//! The builder-driven scenario pipeline.
//!
//! One object owns a run: device geometry, deployed victims, the
//! mounted defense stack, the attack driver and its budget. Everything
//! the workspace previously hand-wired (`MemCtrlConfig` →
//! `MemoryController` → `WeightLayout::deploy` → `os_protect_range` →
//! attack driver → ad-hoc defense mounting) goes through here.
//!
//! ```
//! use dlk_sim::{Budget, HammerAttack, LockerMitigation, Scenario, VictimSpec};
//!
//! # fn main() -> Result<(), dlk_sim::SimError> {
//! let mut run = Scenario::builder()
//!     .label("doc")
//!     .victim(VictimSpec::row(20, 0xA5))
//!     .attack(HammerAttack::bit(7))
//!     .defense(LockerMitigation::adjacent())
//!     .budget(Budget { max_activations: 1_000, check_interval: 8, iterations: 1 })
//!     .build()?;
//! let report = run.run()?;
//! assert!(report.fully_denied());
//! assert_eq!(report.victims[0].data_intact, Some(true));
//! # Ok(())
//! # }
//! ```

use dlk_dnn::QuantizedMlp;
use dlk_engine::{EngineConfig, ShardedEngine};
use dlk_memctrl::{MemCtrlConfig, MemoryController};

use crate::attack::{Attack, RunEnv};
use crate::error::SimError;
use crate::mitigation::{HookChain, Mitigation, MountCtx};
use crate::report::{AttackOutcome, MitigationReport, RunReport, VictimReport};
use crate::victim::{DeployedVictim, VictimSpec};

/// The attack-side resource budget of a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    /// Maximum aggressor activations per hammer campaign.
    pub max_activations: u64,
    /// Hammer loop checks the victim bit every this many activations.
    pub check_interval: u64,
    /// Iterations for progressive attacks (BFA, random flips).
    pub iterations: usize,
}

impl Default for Budget {
    fn default() -> Self {
        Self { max_activations: 20_000, check_interval: 8, iterations: 10 }
    }
}

/// Entry point of the unified simulation API: `Scenario::builder()`.
pub struct Scenario;

impl Scenario {
    /// Starts building a scenario.
    pub fn builder() -> ScenarioBuilder {
        ScenarioBuilder::new()
    }
}

/// Builds a [`ScenarioRun`] from parts.
pub struct ScenarioBuilder {
    label: String,
    config: MemCtrlConfig,
    engine: EngineConfig,
    victims: Vec<(VictimSpec, usize)>,
    attack: Option<Box<dyn Attack>>,
    defenses: Vec<Box<dyn Mitigation>>,
    budget: Budget,
    eval_batch: usize,
    target: usize,
}

impl ScenarioBuilder {
    fn new() -> Self {
        Self {
            label: "unnamed".to_owned(),
            config: MemCtrlConfig::tiny_for_tests(),
            engine: EngineConfig::serial(),
            victims: Vec::new(),
            attack: None,
            defenses: Vec::new(),
            budget: Budget::default(),
            eval_batch: 64,
            target: 0,
        }
    }

    /// Names the scenario (shows up in the report).
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Sets the *per-channel* device/controller configuration (default:
    /// the tiny test geometry, TRH 16).
    pub fn geometry(mut self, config: MemCtrlConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the execution engine configuration (default:
    /// [`EngineConfig::serial`], one channel, no threads). With
    /// [`EngineConfig::sharded`], the scenario instantiates one channel
    /// shard per DRAM channel — each with its own controller, device
    /// and mounted defense chain — and steps them on scoped threads.
    pub fn engine(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }

    /// Adds a victim on channel 0. Repeatable: later victims share the
    /// device (multi-tenant scenarios).
    pub fn victim(mut self, spec: VictimSpec) -> Self {
        self.victims.push((spec, 0));
        self
    }

    /// Adds a victim homed on a specific channel of a multi-channel
    /// engine — cross-channel multi-tenant scenarios. The victim's
    /// data, OS protection and defense coverage all live on that
    /// channel's shard.
    pub fn victim_on(mut self, spec: VictimSpec, channel: usize) -> Self {
        self.victims.push((spec, channel));
        self
    }

    /// Sets the attack (or benign workload) driver.
    pub fn attack(mut self, attack: impl Attack + 'static) -> Self {
        self.attack = Some(Box::new(attack));
        self
    }

    /// Mounts a defense. Repeatable: multiple defenses stack into a
    /// [`HookChain`] consulted in mount order.
    pub fn defense(mut self, mitigation: impl Mitigation + 'static) -> Self {
        self.defenses.push(Box::new(mitigation));
        self
    }

    /// Sets the attack budget.
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Held-out sample size for accuracy measurements (default 64).
    pub fn eval_batch(mut self, n: usize) -> Self {
        self.eval_batch = n.max(1);
        self
    }

    /// Which victim the attack targets (default 0, the first).
    pub fn target_victim(mut self, index: usize) -> Self {
        self.target = index;
        self
    }

    /// Deploys the victims on their home shards, mounts the defense
    /// stack on every channel, and returns the executable pipeline.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Build`] for an empty victim list, a bad
    /// target index, a zero channel count or an out-of-range home
    /// channel, and propagates deployment/mount failures.
    pub fn build(self) -> Result<ScenarioRun, SimError> {
        if self.victims.is_empty() {
            return Err(SimError::Build(format!("scenario '{}' has no victim", self.label)));
        }
        if self.target >= self.victims.len() {
            return Err(SimError::Build(format!(
                "target victim {} out of range ({} victims)",
                self.target,
                self.victims.len()
            )));
        }
        let channels = self.engine.channels;
        if let Some(&(_, bad)) = self.victims.iter().find(|&&(_, channel)| channel >= channels) {
            return Err(SimError::Build(format!(
                "victim homed on channel {bad}, but the engine has {channels} channels"
            )));
        }
        let mut engine = ShardedEngine::new(self.engine, self.config)?;

        // Deploy every victim on its home shard (shard-local
        // addressing: each channel is its own device).
        let mut victims = Vec::with_capacity(self.victims.len());
        let mut homes = Vec::with_capacity(self.victims.len());
        for (spec, home) in self.victims {
            victims.push(spec.deploy(engine.shard_mut(home).controller_mut())?);
            homes.push(home);
        }

        // Each channel guards the ranges of the victims homed on it —
        // the per-channel slice of the defense state (for DRAM-Locker,
        // the shard's lock-table slice).
        let mut guarded_per_channel: Vec<Vec<(u64, u64)>> = vec![Vec::new(); channels];
        for (victim, &home) in victims.iter().zip(&homes) {
            guarded_per_channel[home].extend(victim.guarded_ranges().iter().copied());
        }
        for (channel, guarded) in guarded_per_channel.iter().enumerate() {
            let shard = engine.shard_mut(channel);
            let ctx = MountCtx {
                geometry: shard.controller().geometry(),
                mapper: shard.controller().mapper(),
                guarded,
            };
            let mut hooks = Vec::with_capacity(self.defenses.len());
            for mitigation in &self.defenses {
                hooks.push(mitigation.mount(&ctx)?);
            }
            match hooks.len() {
                0 => {}
                1 => {
                    shard.controller_mut().set_hook(hooks.pop().expect("one hook"));
                }
                _ => {
                    shard.controller_mut().set_hook(Box::new(HookChain::new(hooks)));
                }
            }
        }
        Ok(ScenarioRun {
            label: self.label,
            engine,
            victims,
            homes,
            attack: self.attack,
            defenses: self.defenses,
            budget: self.budget,
            eval_batch: self.eval_batch,
            target: self.target,
        })
    }
}

/// A built, deployed pipeline, ready to run.
pub struct ScenarioRun {
    label: String,
    engine: ShardedEngine,
    victims: Vec<DeployedVictim>,
    /// Each victim's home channel, parallel to `victims`.
    homes: Vec<usize>,
    attack: Option<Box<dyn Attack>>,
    defenses: Vec<Box<dyn Mitigation>>,
    budget: Budget,
    eval_batch: usize,
    target: usize,
}

impl std::fmt::Debug for ScenarioRun {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScenarioRun")
            .field("label", &self.label)
            .field("channels", &self.engine.channels())
            .field("victims", &self.victims.len())
            .field("attack", &self.attack.as_ref().map(|a| a.name()))
            .field("hook", &self.engine.primary().controller().hook().name())
            .field("budget", &self.budget)
            .finish()
    }
}

impl ScenarioRun {
    /// The scenario label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The scenario's budget.
    pub fn budget(&self) -> Budget {
        self.budget
    }

    /// The sharded execution engine (read-only).
    pub fn engine(&self) -> &ShardedEngine {
        &self.engine
    }

    /// Mutable access to the engine — for demonstrations and tests
    /// that route extra global traffic through the same pipeline.
    pub fn engine_mut(&mut self) -> &mut ShardedEngine {
        &mut self.engine
    }

    /// Channel 0's memory controller (read-only). For the default
    /// serial engine this is *the* controller, exactly as before the
    /// engine migration.
    pub fn controller(&self) -> &MemoryController {
        self.engine.primary().controller()
    }

    /// Mutable access to channel 0's controller — for demonstrations
    /// and tests that drive extra shard-local traffic.
    pub fn controller_mut(&mut self) -> &mut MemoryController {
        self.engine.primary_mut().controller_mut()
    }

    /// The deployed victims.
    pub fn victims(&self) -> &[DeployedVictim] {
        &self.victims
    }

    /// One deployed victim.
    pub fn victim(&self, index: usize) -> &DeployedVictim {
        &self.victims[index]
    }

    /// Victim `index`'s home channel.
    pub fn home(&self, index: usize) -> usize {
        self.homes[index]
    }

    /// Reloads victim `index`'s model from its home shard through the
    /// controller (trusted reads, following defense redirects).
    ///
    /// # Errors
    ///
    /// Propagates controller errors; `Ok(None)` for raw-row victims.
    pub fn reload_model(&mut self, index: usize) -> Result<Option<QuantizedMlp>, SimError> {
        let victim = &self.victims[index];
        victim.reload_model(self.engine.shard_mut(self.homes[index]).controller_mut())
    }

    /// Executes the attack phase, then measures every victim and
    /// assembles the unified report. Cycle/energy/controller statistics
    /// are snapshotted at the end of the attack phase, before the
    /// measurement probes. Calling `run` again re-executes the attack
    /// on the already-attacked device (useful for benchmarking a
    /// steady-state defended campaign); accuracy baselines always refer
    /// to the pristine deployment.
    ///
    /// # Errors
    ///
    /// Propagates attack and measurement failures.
    pub fn run(&mut self) -> Result<RunReport, SimError> {
        let accuracy_before: Vec<Option<f64>> = self
            .victims
            .iter()
            .map(|v| v.victim().and_then(|vic| v.accuracy_pct(&vic.model, self.eval_batch)))
            .collect();

        let (outcome, attack_name) = match self.attack.take() {
            Some(mut attack) => {
                let mut env = RunEnv {
                    engine: &mut self.engine,
                    victims: &self.victims,
                    homes: &self.homes,
                    target: self.target,
                    budget: self.budget,
                    eval_batch: self.eval_batch,
                };
                let result = attack.execute(&mut env);
                let name = attack.name().to_owned();
                self.attack = Some(attack);
                (result?, name)
            }
            None => (AttackOutcome::default(), String::new()),
        };

        // Snapshot attack-phase costs before the measurement probes
        // drive their own traffic. The snapshot is merged in channel-id
        // order, so it is identical whether the shards just ran on
        // threads or serially.
        let snapshot = self.engine.snapshot();

        let mut victim_reports = Vec::with_capacity(self.victims.len());
        for (index, victim) in self.victims.iter().enumerate() {
            let ctrl = self.engine.shard_mut(self.homes[index]).controller_mut();
            let reloaded = victim.reload_model(ctrl)?;
            let accuracy_after_pct =
                reloaded.and_then(|model| victim.accuracy_pct(&model, self.eval_batch));
            let data_intact = victim.data_intact(ctrl)?;
            victim_reports.push(VictimReport {
                accuracy_before_pct: accuracy_before[index],
                accuracy_after_pct,
                data_intact,
            });
        }

        // Per-defense action counts, summed over channels in channel-id
        // order: every shard mounted the same stack, so defense `i` is
        // hook `i` of every shard's chain.
        let mitigations: Vec<MitigationReport> = self
            .defenses
            .iter()
            .enumerate()
            .map(|(index, mitigation)| {
                let actions = self
                    .engine
                    .shards()
                    .iter()
                    .map(|shard| {
                        let hook = shard.controller().hook();
                        match hook.as_any().and_then(|any| any.downcast_ref::<HookChain>()) {
                            Some(chain) => mitigation.actions(chain.hooks()[index].as_ref()),
                            None => mitigation.actions(hook),
                        }
                    })
                    .sum();
                MitigationReport { name: mitigation.name().to_owned(), actions }
            })
            .collect();

        Ok(RunReport {
            scenario: self.label.clone(),
            attack: attack_name,
            channels: self.engine.channels(),
            defenses: self.defenses.iter().map(|m| m.name().to_owned()).collect(),
            landed_flips: outcome.landed_flips,
            requests: outcome.requests,
            denied: outcome.denied,
            redirected: outcome.redirected,
            target_bits: outcome.target_bits,
            flipped_bits: outcome.flipped_bits,
            curve: outcome.curve,
            cycles: snapshot.cycles,
            energy_pj: snapshot.energy_pj,
            controller: snapshot.controller,
            victims: victim_reports,
            mitigations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::{HammerAttack, RowProbe};
    use crate::mitigation::{LockerMitigation, TrackerMitigation};
    use dlk_defenses::Graphene;

    fn hammer_budget() -> Budget {
        Budget { max_activations: 4_000, check_interval: 8, iterations: 1 }
    }

    #[test]
    fn builder_rejects_empty_scenarios() {
        assert!(matches!(Scenario::builder().build(), Err(SimError::Build(_))));
        let bad_target = Scenario::builder().victim(VictimSpec::row(5, 1)).target_victim(3).build();
        assert!(matches!(bad_target, Err(SimError::Build(_))));
    }

    #[test]
    fn undefended_hammer_harms_the_row_victim() {
        let mut run = Scenario::builder()
            .label("undefended")
            .victim(VictimSpec::row(20, 0xA5))
            .attack(HammerAttack::bit(77))
            .budget(hammer_budget())
            .build()
            .unwrap();
        let report = run.run().unwrap();
        assert_eq!(report.landed_flips, 1);
        assert_eq!(report.denied, 0);
        assert_eq!(report.victims[0].data_intact, Some(false));
        assert!(report.harmed());
    }

    #[test]
    fn locker_denies_the_same_campaign() {
        let mut run = Scenario::builder()
            .label("defended")
            .victim(VictimSpec::row(20, 0xA5))
            .attack(HammerAttack::bit(77))
            .defense(LockerMitigation::adjacent())
            .budget(hammer_budget())
            .build()
            .unwrap();
        let report = run.run().unwrap();
        assert!(report.fully_denied(), "{report:?}");
        assert_eq!(report.victims[0].data_intact, Some(true));
        assert!(!report.harmed());
        assert_eq!(report.defenses, vec!["dram-locker".to_owned()]);
        assert!(report.mitigation_total() > 0);
    }

    #[test]
    fn stacked_defenses_report_individually() {
        let mut run = Scenario::builder()
            .label("stacked")
            .victim(VictimSpec::row(20, 0xA5))
            .attack(HammerAttack::bit(77))
            .defense(LockerMitigation::adjacent())
            .defense(TrackerMitigation::new(Graphene::new(64, 8)))
            .budget(hammer_budget())
            .build()
            .unwrap();
        let report = run.run().unwrap();
        assert_eq!(report.mitigations.len(), 2);
        assert_eq!(report.mitigations[0].name, "dram-locker");
        assert_eq!(report.mitigations[1].name, "graphene");
        // The locker denies everything, so the tracker sees nothing.
        assert!(report.fully_denied());
        assert!(report.mitigations[0].actions > 0);
    }

    #[test]
    fn probe_against_data_locked_row_is_denied_but_data_flows_for_victim() {
        let mut run = Scenario::builder()
            .label("probe")
            .victim(VictimSpec::row(10, 0x42))
            .attack(RowProbe { accesses: 100 })
            .defense(LockerMitigation::data_rows())
            .build()
            .unwrap();
        let report = run.run().unwrap();
        assert_eq!(report.denied, 100);
        // The integrity probe (trusted) was served via SWAP + redirect.
        assert_eq!(report.victims[0].data_intact, Some(true));
    }

    #[test]
    fn report_snapshots_attack_phase_costs() {
        let mut run = Scenario::builder()
            .victim(VictimSpec::row(20, 0xA5))
            .attack(HammerAttack::bit(3))
            .budget(hammer_budget())
            .build()
            .unwrap();
        let report = run.run().unwrap();
        assert!(report.cycles > 0);
        assert!(report.energy_pj > 0.0);
        // The trailing integrity read is excluded from the snapshot.
        assert!(run.controller().dram().stats().cycles > report.cycles);
    }
}
