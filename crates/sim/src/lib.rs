//! # dlk-sim — the unified Scenario API
//!
//! One builder-driven pipeline for every attack/defense experiment in
//! the workspace:
//!
//! ```text
//! Scenario::builder()
//!     .geometry(..)   // MemCtrlConfig (device + mapping + scheduling)
//!     .victim(..)     // raw rows, a deployed model, or a paged model
//!     .attack(..)     // any `Attack` driver
//!     .defense(..)    // any `Mitigation`, stackable
//!     .budget(..)     // activations / iterations
//!     .build()?       // deploys victims, mounts defenses
//!     .run()?         // -> RunReport
//! ```
//!
//! Attacks and defenses are uniformly *assignable* components: the
//! object-safe [`Attack`] trait covers the RowHammer driver
//! ([`HammerAttack`]), the progressive bit search ([`ProgressiveBfa`],
//! [`BfaHammerAttack`]), random flips ([`RandomFlipAttack`]), the page
//! table attack ([`PageTablePoison`]) and benign victim traffic
//! ([`InferenceStream`]); the [`Mitigation`] trait covers DRAM-Locker
//! ([`LockerMitigation`]) and every baseline in `dlk-defenses`
//! ([`TrackerMitigation`], [`RowSwapMitigation`], [`ShadowMitigation`]).
//! The unified [`RunReport`] carries accuracy deltas, denied/landed
//! flips, cycles, energy and per-defense mitigation counts.
//!
//! ## Paper-figure → catalog map
//!
//! [`catalog()`] enumerates the named attack × defense scenarios; each
//! maps to a paper artifact:
//!
//! | Catalog scenario | Paper artifact |
//! |------------------|----------------|
//! | `hammer-vs-none` | Fig. 4 premise (undefended flip) |
//! | `hammer-vs-dram-locker` | Fig. 4(d) lock-table denial |
//! | `hammer-vs-{graphene,hydra,twice,counter-per-row,rrs,srs}` | Table I baselines |
//! | `hammer-vs-shadow` | Fig. 7 closest competitor |
//! | `bfa-vs-none` / `bfa-vs-dram-locker` | Fig. 8 accuracy curves |
//! | `cnn-bfa-vs-none` / `cnn-bfa-vs-dram-locker` | Fig. 8 on the ResNet-20-shaped CNN |
//! | `cnn-bfa-hammer-vs-dram-locker` | Fig. 4(d) against conv kernels |
//! | `cnn-inference-2ch[-vs-dram-locker]` | CNN weight fetch on the sharded engine |
//! | `random-vs-none` | Fig. 1(a) random baseline |
//! | `pta-vs-none` / `pta-vs-dram-locker` | §V page-table attack |
//! | `inference-vs-dram-locker` | Table II prose (victim overhead) |
//!
//! ```
//! use dlk_sim::catalog;
//!
//! let entry = dlk_sim::find("hammer-vs-dram-locker").unwrap();
//! let report = entry.scenario().build().unwrap().run().unwrap();
//! assert!(report.fully_denied());
//! assert!(catalog().len() >= 6);
//! ```
//!
//! ## Specs and sweeps
//!
//! Every scenario is *data*: a [`ScenarioSpec`] with enum-keyed
//! [`AttackSpec`]/[`DefenseSpec`]/[`VictimSpec`] parts, a line-oriented
//! [`to_text`](ScenarioSpec::to_text)/[`from_text`](ScenarioSpec::from_text)
//! codec (the on-disk spec-file format) and
//! [`Scenario::from_spec`] as the one construction path. Grids expand
//! through [`sweep::SweepGrid`], execute on worker threads through
//! [`sweep::SweepRunner`] (results deterministic, bit-identical to
//! serial) and export through [`metrics::Table`]:
//!
//! ```
//! use dlk_sim::sweep::{SweepGrid, SweepRunner};
//! use dlk_sim::{metrics, DefenseSpec};
//!
//! let specs = SweepGrid::over(dlk_sim::find("hammer-vs-none").unwrap().spec)
//!     .defenses([vec![], vec![DefenseSpec::locker_adjacent()]])
//!     .expand();
//! let reports = SweepRunner::parallel().run_reports(&specs).unwrap();
//! println!("{}", metrics::Table::from_reports(&reports).to_csv());
//! ```

pub mod attack;
pub mod catalog;
pub mod error;
pub mod metrics;
pub mod mitigation;
pub mod report;
pub mod scenario;
pub mod spec;
pub mod sweep;
pub mod victim;

pub use crate::attack::{
    Attack, BfaHammerAttack, HammerAttack, InferenceStream, PageTablePoison, ProgressiveBfa,
    RandomFlipAttack, ReplayWorkload, RowProbe, RunEnv,
};
pub use crate::catalog::{catalog, find, CatalogEntry, Expected};
pub use crate::error::SimError;
pub use crate::mitigation::{
    HookChain, LockerMitigation, Mitigation, MountCtx, RowSwapMitigation, ShadowMitigation,
    TrackerMitigation,
};
pub use crate::report::{AttackOutcome, MitigationReport, RunReport, VictimReport};
pub use crate::scenario::{Budget, Scenario, ScenarioBuilder, ScenarioRun};
pub use crate::spec::{AttackSpec, DefenseSpec, GeometrySpec, ScenarioSpec};
pub use crate::sweep::{JobError, JobOutcome, JobStatus, SweepGrid, SweepResult, SweepRunner};
pub use crate::victim::{DeployedVictim, VictimSpec};

pub use dlk_dnn::models::ModelKind;
pub use dlk_engine::{ChannelRouter, EngineConfig, ShardedEngine, Workload};
/// The observability layer, re-exported so front-ends (the `dlk` CLI,
/// the serve daemon) can build registries and span recorders without a
/// direct `dlk-obs` dependency.
pub use dlk_obs as obs;
