//! The unified scenario error type.

use dlk_dnn::DnnError;
use dlk_dram::DramError;
use dlk_engine::EngineError;
use dlk_locker::LockerError;
use dlk_memctrl::MemCtrlError;

/// Anything that can go wrong while building or running a scenario.
#[derive(Debug)]
pub enum SimError {
    /// Memory-controller or translation failure.
    Ctrl(MemCtrlError),
    /// DRAM device failure.
    Dram(DramError),
    /// DNN substrate failure (layout, weight indices, shapes).
    Dnn(DnnError),
    /// DRAM-Locker failure (lock-table capacity, bad ranges).
    Locker(LockerError),
    /// Sharded execution engine failure (bad channel, shard error).
    Engine(EngineError),
    /// Scenario assembly failure (missing victim, bad target index, …).
    Build(String),
    /// A scenario spec file failed to parse.
    SpecParse {
        /// 1-based line number of the offending record.
        line: usize,
        /// The offending line's content (trimmed; empty when the
        /// source text is unavailable).
        text: String,
        /// What was wrong with it.
        reason: String,
    },
    /// A spec file could not be read (or written) from disk.
    Io {
        /// The path involved.
        path: String,
        /// The underlying filesystem error.
        error: std::io::Error,
    },
    /// A catalog lookup named no known scenario.
    UnknownScenario {
        /// The name that was looked up.
        name: String,
        /// The nearest catalog name by edit distance, if any is close
        /// enough to plausibly be a typo.
        suggestion: Option<String>,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Ctrl(e) => write!(f, "controller: {e}"),
            SimError::Dram(e) => write!(f, "dram: {e}"),
            SimError::Dnn(e) => write!(f, "dnn: {e}"),
            SimError::Locker(e) => write!(f, "locker: {e}"),
            SimError::Engine(e) => write!(f, "engine: {e}"),
            SimError::Build(msg) => write!(f, "scenario build: {msg}"),
            SimError::SpecParse { line, text, reason } => {
                write!(f, "spec parse: line {line}: {reason}")?;
                if !text.is_empty() {
                    write!(f, "\n  {line} | {text}")?;
                }
                Ok(())
            }
            SimError::Io { path, error } => write!(f, "io: {path}: {error}"),
            SimError::UnknownScenario { name, suggestion } => {
                write!(f, "unknown scenario '{name}'")?;
                if let Some(suggestion) = suggestion {
                    write!(f, " (did you mean '{suggestion}'?)")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for SimError {}

impl From<MemCtrlError> for SimError {
    fn from(e: MemCtrlError) -> Self {
        SimError::Ctrl(e)
    }
}

impl From<DramError> for SimError {
    fn from(e: DramError) -> Self {
        SimError::Dram(e)
    }
}

impl From<DnnError> for SimError {
    fn from(e: DnnError) -> Self {
        SimError::Dnn(e)
    }
}

impl From<LockerError> for SimError {
    fn from(e: LockerError) -> Self {
        SimError::Locker(e)
    }
}

impl From<EngineError> for SimError {
    fn from(e: EngineError) -> Self {
        SimError::Engine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_tags_the_layer() {
        let e = SimError::Build("no victim".into());
        assert!(e.to_string().contains("scenario build"));
        let e: SimError = LockerError::BadRange { start: 1, end: 0 }.into();
        assert!(e.to_string().starts_with("locker:"));
    }
}
