//! Unified metrics export for swept runs.
//!
//! A [`Table`] collects any number of [`RunReport`]s into one
//! rectangular result set — rows keyed by scenario label, columns the
//! report's scalar fields plus one `mit:<defense>` column per defense
//! name seen anywhere in the set — and exports it as CSV (for figure
//! pipelines and CI logs) or markdown (for docs and PR summaries).
//!
//! ```
//! use dlk_sim::{metrics, Scenario};
//!
//! # fn main() -> Result<(), dlk_sim::SimError> {
//! let report = dlk_sim::find("hammer-vs-dram-locker")?.scenario().build()?.run()?;
//! let table = metrics::Table::from_reports([&report]);
//! assert!(table.to_csv().contains("hammer-vs-dram-locker"));
//! assert!(table.to_markdown().starts_with("| scenario |"));
//! # Ok(())
//! # }
//! ```

use crate::report::{csv_escape, RunReport};

/// A rectangular result set over swept scenario runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Builds the table from reports, in the given (deterministic)
    /// order. Per-defense mitigation-count columns are the union of the
    /// defense names across all reports, in first-appearance order;
    /// reports that did not mount a defense leave its cell empty.
    pub fn from_reports<'a>(reports: impl IntoIterator<Item = &'a RunReport>) -> Self {
        let reports: Vec<&RunReport> = reports.into_iter().collect();
        let mut defense_names: Vec<String> = Vec::new();
        for report in &reports {
            for mitigation in &report.mitigations {
                if !defense_names.contains(&mitigation.name) {
                    defense_names.push(mitigation.name.clone());
                }
            }
        }
        let mut columns: Vec<String> =
            RunReport::csv_header().split(',').map(str::to_owned).collect();
        // The folded single-report summary column is replaced by one
        // real column per defense.
        columns.pop();
        columns.extend(defense_names.iter().map(|name| format!("mit:{name}")));
        let rows = reports
            .iter()
            .map(|report| {
                let mut cells = report.csv_cells();
                cells.pop();
                for name in &defense_names {
                    let actions = report
                        .mitigations
                        .iter()
                        .find(|m| &m.name == name)
                        .map(|m| m.actions.to_string())
                        .unwrap_or_default();
                    cells.push(actions);
                }
                cells
            })
            .collect();
        Self { columns, rows }
    }

    /// The column names.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// The rows, in report order.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// CSV export: header line plus one line per row.
    pub fn to_csv(&self) -> String {
        let mut out = self.columns.join(",");
        out.push('\n');
        for row in &self.rows {
            let line: Vec<String> = row.iter().map(|cell| csv_escape(cell)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        }
        out
    }

    /// GitHub-flavored markdown export.
    pub fn to_markdown(&self) -> String {
        let escape = |cell: &str| cell.replace('|', "\\|");
        let mut out = format!("| {} |\n", self.columns.join(" | "));
        out.push_str(&format!("|{}\n", "---|".repeat(self.columns.len())));
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|c| escape(c)).collect();
            out.push_str(&format!("| {} |\n", cells.join(" | ")));
        }
        out
    }
}

/// Column-aligned plain text (pads every column to its widest cell).
impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (width, cell) in widths.iter_mut().zip(row) {
                *width = (*width).max(cell.len());
            }
        }
        let write_row = |f: &mut std::fmt::Formatter<'_>, cells: &[String]| {
            for (index, (cell, width)) in cells.iter().zip(&widths).enumerate() {
                if index > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:width$}")?;
            }
            writeln!(f)
        };
        write_row(f, &self.columns)?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{MitigationReport, VictimReport};
    use dlk_memctrl::ControllerStats;

    fn report(label: &str, defenses: &[(&str, u64)]) -> RunReport {
        RunReport {
            scenario: label.to_owned(),
            attack: "hammer".into(),
            channels: 1,
            defenses: defenses.iter().map(|(n, _)| (*n).to_owned()).collect(),
            landed_flips: 0,
            requests: 10,
            denied: 10,
            redirected: false,
            target_bits: vec![],
            flipped_bits: vec![],
            curve: vec![],
            cycles: 99,
            energy_pj: 1.5,
            controller: ControllerStats::default(),
            victims: vec![VictimReport::default()],
            mitigations: defenses
                .iter()
                .map(|(n, a)| MitigationReport { name: (*n).to_owned(), actions: *a })
                .collect(),
        }
    }

    #[test]
    fn defense_columns_are_the_union_in_first_appearance_order() {
        let a = report("a", &[("dram-locker", 3)]);
        let b = report("b", &[("graphene", 5)]);
        let table = Table::from_reports([&a, &b]);
        let columns = table.columns();
        assert_eq!(columns[columns.len() - 2..], ["mit:dram-locker", "mit:graphene"]);
        // Row a has no graphene cell, row b no locker cell.
        assert_eq!(table.rows()[0][columns.len() - 2..], ["3".to_owned(), String::new()]);
        assert_eq!(table.rows()[1][columns.len() - 2..], [String::new(), "5".to_owned()]);
    }

    #[test]
    fn cells_stay_raw_and_escape_exactly_once_at_csv_time() {
        let quoted = report("a,\"b\"", &[]);
        let table = Table::from_reports([&quoted]);
        // Raw in the table (and therefore in markdown/Display)…
        assert_eq!(table.rows()[0][0], "a,\"b\"");
        // …escaped exactly once in CSV, parsing back to the raw label.
        let row = table.to_csv().lines().nth(1).unwrap().to_owned();
        assert!(row.starts_with("\"a,\"\"b\"\"\","), "{row}");
        // RunReport's own single-row export matches.
        assert!(quoted.to_csv_row().starts_with("\"a,\"\"b\"\"\","));
    }

    #[test]
    fn csv_and_markdown_agree_on_shape() {
        let a = report("a", &[("dram-locker", 3)]);
        let table = Table::from_reports([&a]);
        let csv = table.to_csv();
        assert_eq!(csv.lines().count(), 2);
        assert_eq!(csv.lines().next().unwrap().split(',').count(), table.columns().len());
        let md = table.to_markdown();
        assert_eq!(md.lines().count(), 3);
        assert!(md.lines().nth(1).unwrap().starts_with("|---|"));
        let text = table.to_string();
        assert!(text.lines().next().unwrap().starts_with("scenario"));
    }
}
