//! Grid expansion and work-stealing parallel execution over scenario
//! specs.
//!
//! The paper's results are grids — attack × defense × geometry sweeps
//! reported as tables and figures. [`SweepGrid`] expands axes over a
//! base [`ScenarioSpec`] into a flat, deterministic spec list;
//! [`SweepRunner`] executes any spec list on a work-stealing job queue
//! (a shared injector plus one deque per worker; an idle worker steals
//! from a sibling's tail) and returns results in spec order,
//! bit-identical to running each spec serially (scenarios share no
//! state, and each one's engine is already deterministic). Feed the
//! reports to [`metrics::Table`](crate::metrics::Table) for
//! CSV/markdown export.
//!
//! Serving fronts (the `dlk` daemon) get three extra guarantees per
//! job: a wall-clock [`timeout`](SweepRunner::timeout), panic
//! isolation (a poisoned spec fails *that* [`JobOutcome`], not the
//! process), and an [`on_progress`](SweepRunner::on_progress) callback
//! streamed in completion order that can cancel the rest of the queue.
//!
//! ```
//! use dlk_sim::sweep::{SweepGrid, SweepRunner};
//! use dlk_sim::{metrics, DefenseSpec};
//!
//! # fn main() -> Result<(), dlk_sim::SimError> {
//! let base = dlk_sim::find("hammer-vs-none")?.spec;
//! let specs = SweepGrid::over(base)
//!     .channels([1, 2])
//!     .defenses([vec![], vec![DefenseSpec::locker_adjacent()]])
//!     .expand();
//! assert_eq!(specs.len(), 4);
//! let results = SweepRunner::parallel().run(&specs);
//! let reports: Vec<_> = results.iter().filter_map(|r| r.report.as_ref().ok()).collect();
//! let csv = metrics::Table::from_reports(reports.iter().copied()).to_csv();
//! assert_eq!(csv.lines().count(), 1 + 4);
//! # Ok(())
//! # }
//! ```

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
// dlk-lint: allow(DLK003): sweep telemetry measures real wall time
use std::time::{Duration, Instant};

use dlk_dnn::models::ModelKind;
use dlk_obs::{Counter, Gauge, Histogram, Registry, Sampler};

use crate::error::SimError;
use crate::report::RunReport;
use crate::scenario::Scenario;
use crate::spec::{AttackSpec, DefenseSpec, ScenarioSpec};

/// Expands axes over a base spec into the cartesian spec list.
///
/// Every axis is optional; an unset axis keeps the base spec's value.
/// Expansion order is deterministic: models (outermost) × attacks ×
/// defense stacks × channels (innermost), each in the order given.
/// Labels append one `/`-separated segment per set axis, so each
/// expanded spec is self-describing in reports and tables.
#[derive(Debug, Clone)]
pub struct SweepGrid {
    base: ScenarioSpec,
    channels: Vec<usize>,
    defenses: Vec<Vec<DefenseSpec>>,
    attacks: Vec<AttackSpec>,
    models: Vec<ModelKind>,
}

impl SweepGrid {
    /// A grid over `base` with no axes set (expands to just `base`).
    pub fn over(base: ScenarioSpec) -> Self {
        Self {
            base,
            channels: Vec::new(),
            defenses: Vec::new(),
            attacks: Vec::new(),
            models: Vec::new(),
        }
    }

    /// Sweeps the engine's channel count. Parallelism within one run
    /// follows the base spec's engine (`parallel` flag); a 1-channel
    /// point is the classic serial pipeline.
    pub fn channels(mut self, channels: impl IntoIterator<Item = usize>) -> Self {
        self.channels = channels.into_iter().collect();
        self
    }

    /// Sweeps the defense stack (each element is one whole stack; use
    /// `vec![]` for the undefended point).
    pub fn defenses(mut self, stacks: impl IntoIterator<Item = Vec<DefenseSpec>>) -> Self {
        self.defenses = stacks.into_iter().collect();
        self
    }

    /// Sweeps the attack.
    pub fn attacks(mut self, attacks: impl IntoIterator<Item = AttackSpec>) -> Self {
        self.attacks = attacks.into_iter().collect();
        self
    }

    /// Sweeps the victim model kind (applied to every model-backed
    /// victim of the base spec, keeping each victim's seed and layout).
    pub fn models(mut self, models: impl IntoIterator<Item = ModelKind>) -> Self {
        self.models = models.into_iter().collect();
        self
    }

    /// The expanded spec list.
    pub fn expand(&self) -> Vec<ScenarioSpec> {
        // Each axis expands to "keep the base value" when unset; `None`
        // marks the kept point so labels only grow for real axes.
        fn axis<T: Clone>(values: &[T]) -> Vec<Option<T>> {
            if values.is_empty() {
                vec![None]
            } else {
                values.iter().cloned().map(Some).collect()
            }
        }
        let mut specs = Vec::new();
        for model in axis(&self.models) {
            for attack in axis(&self.attacks) {
                for stack in axis(&self.defenses) {
                    for channels in axis(&self.channels) {
                        let mut spec = self.base.clone();
                        let mut label = spec.label.clone();
                        if let Some(model) = model {
                            for (victim, _) in &mut spec.victims {
                                *victim = victim.with_model_kind(model);
                            }
                            label.push_str(&format!("/{}", model.token()));
                        }
                        if let Some(attack) = &attack {
                            spec.attack = Some(attack.clone());
                            label.push_str(&format!("/{}", attack.token()));
                        }
                        if let Some(stack) = &stack {
                            spec.defenses = stack.clone();
                            let stack_label = if stack.is_empty() {
                                "none".to_owned()
                            } else {
                                stack.iter().map(DefenseSpec::name).collect::<Vec<_>>().join("+")
                            };
                            label.push_str(&format!("/{stack_label}"));
                        }
                        if let Some(channels) = channels {
                            spec.engine.channels = channels;
                            label.push_str(&format!("/{channels}ch"));
                        }
                        spec.label = label;
                        specs.push(spec);
                    }
                }
            }
        }
        specs
    }
}

/// One executed point of a sweep.
#[derive(Debug)]
pub struct SweepResult {
    /// The spec that ran.
    pub spec: ScenarioSpec,
    /// Its report, or the build/run failure.
    pub report: Result<RunReport, SimError>,
}

/// How one queued job ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// The scenario ran and produced a report.
    Done,
    /// The scenario failed to build or run ([`SimError`]).
    Failed,
    /// The job panicked; the worker (and the queue) survived.
    Panicked,
    /// The job exceeded the per-job wall-clock timeout.
    TimedOut,
    /// The queue was cancelled before this job executed.
    Cancelled,
}

impl JobStatus {
    /// The stable lowercase token (`done`/`failed`/`panicked`/
    /// `timed-out`/`cancelled`) used in logs and journals.
    pub fn token(self) -> &'static str {
        match self {
            JobStatus::Done => "done",
            JobStatus::Failed => "failed",
            JobStatus::Panicked => "panicked",
            JobStatus::TimedOut => "timed-out",
            JobStatus::Cancelled => "cancelled",
        }
    }
}

/// Why a job produced no report.
#[derive(Debug)]
pub enum JobError {
    /// Scenario build/run failure.
    Scenario(SimError),
    /// The job panicked with this message.
    Panicked(String),
    /// The job exceeded this wall-clock budget.
    TimedOut(Duration),
    /// The queue was cancelled (by the progress callback) before the
    /// job executed.
    Cancelled,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Scenario(e) => write!(f, "{e}"),
            JobError::Panicked(msg) => write!(f, "job panicked: {msg}"),
            JobError::TimedOut(limit) => write!(f, "job timed out after {limit:?}"),
            JobError::Cancelled => write!(f, "job cancelled before execution"),
        }
    }
}

impl std::error::Error for JobError {}

/// One executed (or skipped) job of a sweep, with scheduling metadata.
#[derive(Debug)]
pub struct JobOutcome {
    /// Index into the submitted spec list.
    pub index: usize,
    /// The spec's label (`#<index>` for closure jobs).
    pub label: String,
    /// The worker that executed the job (`None` when cancelled).
    pub worker: Option<usize>,
    /// The job was stolen from another worker's deque.
    pub stolen: bool,
    /// Wall-clock time the job spent executing.
    pub wall: Duration,
    /// The report, or why there is none.
    pub report: Result<RunReport, JobError>,
}

impl JobOutcome {
    /// The job's terminal status.
    pub fn status(&self) -> JobStatus {
        match &self.report {
            Ok(_) => JobStatus::Done,
            Err(JobError::Scenario(_)) => JobStatus::Failed,
            Err(JobError::Panicked(_)) => JobStatus::Panicked,
            Err(JobError::TimedOut(_)) => JobStatus::TimedOut,
            Err(JobError::Cancelled) => JobStatus::Cancelled,
        }
    }

    fn cancelled(index: usize, label: String) -> Self {
        Self {
            index,
            label,
            worker: None,
            stolen: false,
            wall: Duration::ZERO,
            report: Err(JobError::Cancelled),
        }
    }
}

/// The progress callback: invoked once per job in *completion* order,
/// from worker threads. Returning `false` cancels the queue — workers
/// stop taking jobs, in-flight jobs finish but every further outcome
/// (including theirs) is still recorded in its slot.
pub type ProgressFn = dyn Fn(&JobOutcome) -> bool + Send + Sync;

/// The work-stealing job queue: one shared injector plus one deque per
/// worker. Jobs are dealt to the locals in contiguous index blocks; a
/// worker pops its own deque from the head, falls back to the
/// injector, and finally steals from a sibling's *tail* (classic
/// Chase-Lev shape, here lock-protected since the workspace vendors no
/// lock-free deque). Scheduling never reorders results: every job's
/// outcome lands in its submission-index slot.
struct StealQueue {
    injector: Mutex<VecDeque<usize>>,
    locals: Vec<Mutex<VecDeque<usize>>>,
    cancelled: AtomicBool,
    steals: AtomicU64,
}

impl StealQueue {
    fn deal(workers: usize, count: usize) -> Self {
        let mut locals: Vec<VecDeque<usize>> = (0..workers).map(|_| VecDeque::new()).collect();
        for index in 0..count {
            // Contiguous blocks keep early indices on early workers, so
            // a homogeneous grid still executes roughly in spec order.
            locals[index * workers / count].push_back(index);
        }
        Self {
            injector: Mutex::new(VecDeque::new()),
            locals: locals.into_iter().map(Mutex::new).collect(),
            cancelled: AtomicBool::new(false),
            steals: AtomicU64::new(0),
        }
    }

    /// Next job for `worker`: own head, then injector, then a steal
    /// from a sibling's tail. `None` means the queue is drained (or
    /// cancelled) for good — locals only shrink once dealing is done.
    fn pop(&self, worker: usize) -> Option<(usize, bool)> {
        if self.cancelled.load(Ordering::Acquire) {
            return None;
        }
        if let Some(index) = self.locals[worker].lock().expect("local deque").pop_front() {
            return Some((index, false));
        }
        if let Some(index) = self.injector.lock().expect("injector").pop_front() {
            return Some((index, false));
        }
        let workers = self.locals.len();
        for victim in (worker + 1..workers).chain(0..worker) {
            if let Some(index) = self.locals[victim].lock().expect("victim deque").pop_back() {
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some((index, true));
            }
        }
        None
    }

    fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }
}

/// Executes spec lists on the work-stealing queue.
///
/// Results always come back in spec order, and each run is independent
/// (own engine, own trained victim clones), so the parallel result set
/// is bit-identical to the serial one — the determinism suite asserts
/// exactly that. [`timeout`](SweepRunner::timeout) bounds each job's
/// wall clock, panics are isolated per job, and
/// [`on_progress`](SweepRunner::on_progress) streams outcomes as they
/// complete (and can cancel the rest of the queue).
#[derive(Clone)]
pub struct SweepRunner {
    threads: usize,
    timeout: Option<Duration>,
    progress: Option<Arc<ProgressFn>>,
    obs: Option<Registry>,
    sampler: Option<Arc<Mutex<Sampler>>>,
}

impl std::fmt::Debug for SweepRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepRunner")
            .field("threads", &self.threads)
            .field("timeout", &self.timeout)
            .field("progress", &self.progress.as_ref().map(|_| "Fn"))
            .field("observed", &self.obs.is_some())
            .field("sampled", &self.sampler.is_some())
            .finish()
    }
}

/// Registry-backed handles for the queue's scheduling metrics, resolved
/// once per run so the worker loop never touches the registry lock.
#[derive(Clone)]
struct SweepMetrics {
    jobs: Arc<Counter>,
    steals: Arc<Counter>,
    queue_depth: Arc<Gauge>,
    job_wall_us: Arc<Histogram>,
    worker_busy_ns: Arc<Counter>,
    worker_idle_ns: Arc<Counter>,
}

impl SweepMetrics {
    fn registered(registry: &Registry) -> Self {
        Self {
            jobs: registry.counter("sweep.jobs"),
            steals: registry.counter("sweep.steals"),
            queue_depth: registry.gauge("sweep.queue_depth"),
            job_wall_us: registry.histogram("sweep.job_wall_us"),
            worker_busy_ns: registry.counter("sweep.worker_busy_ns"),
            worker_idle_ns: registry.counter("sweep.worker_idle_ns"),
        }
    }
}

/// Saturating nanoseconds since `since` (a sweep would have to idle for
/// ~585 years to overflow, but the cast should still be total).
// dlk-lint: allow(DLK003): worker busy/idle telemetry, not sim state
fn elapsed_ns(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

impl SweepRunner {
    /// Runs every spec on the calling thread, in order.
    pub fn serial() -> Self {
        Self::with_threads(1)
    }

    /// Runs specs across one worker per available core.
    pub fn parallel() -> Self {
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        Self::with_threads(threads)
    }

    /// Runs specs across exactly `threads` workers (at least one).
    pub fn with_threads(threads: usize) -> Self {
        Self { threads: threads.max(1), timeout: None, progress: None, obs: None, sampler: None }
    }

    /// The worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Bounds each job's wall-clock time. A job past its deadline is
    /// reported [`JobStatus::TimedOut`] and its worker moves on (the
    /// abandoned computation finishes on a detached watchdog thread and
    /// its result is dropped).
    pub fn timeout(mut self, limit: Duration) -> Self {
        self.timeout = Some(limit);
        self
    }

    /// Streams every [`JobOutcome`] in completion order (from worker
    /// threads — the callback must serialize its own side effects).
    /// Returning `false` cancels the remaining queue: workers stop
    /// taking jobs and unexecuted jobs come back
    /// [`JobStatus::Cancelled`] — but jobs already in flight on other
    /// workers run to completion, and their outcomes still reach the
    /// callback (and are recorded in their slots). A callback that must
    /// go quiet after cancelling needs its own guard.
    pub fn on_progress(
        mut self,
        progress: impl Fn(&JobOutcome) -> bool + Send + Sync + 'static,
    ) -> Self {
        self.progress = Some(Arc::new(progress));
        self
    }

    /// Connects the runner to a metrics registry. The queue reports
    /// `sweep.jobs`, `sweep.steals`, `sweep.queue_depth` (a gauge,
    /// back to zero once drained), a `sweep.job_wall_us` histogram and
    /// `sweep.worker_busy_ns`/`sweep.worker_idle_ns` counters; scenario
    /// sweeps additionally observe every run (see
    /// [`ScenarioRun::observe`](crate::ScenarioRun::observe)), so the
    /// engine/controller/locker metrics aggregate across the grid.
    pub fn observe(mut self, registry: &Registry) -> Self {
        self.obs = Some(registry.clone());
        self
    }

    /// Connects the runner to a shared [`Sampler`]: the sampler ticks
    /// once per completed job (from the finishing worker's thread), so
    /// queue depth, busy/idle time and the job wall-clock percentiles
    /// become time series without any polling thread. Pair it with
    /// [`observe`](SweepRunner::observe) on the sampler's registry —
    /// a sampler over an unobserved runner has nothing to snapshot.
    pub fn sample(mut self, sampler: &Arc<Mutex<Sampler>>) -> Self {
        self.sampler = Some(Arc::clone(sampler));
        self
    }

    /// Executes every spec on the queue and returns one [`JobOutcome`]
    /// per spec, in spec order.
    pub fn run_jobs(&self, specs: &[ScenarioSpec]) -> Vec<JobOutcome> {
        let specs: Arc<Vec<ScenarioSpec>> = Arc::new(specs.to_vec());
        let labels: Vec<String> = specs.iter().map(|spec| spec.label.clone()).collect();
        let obs = self.obs.clone();
        let job = move |index: usize| {
            Scenario::from_spec(&specs[index]).and_then(|mut run| {
                if let Some(registry) = &obs {
                    run.observe(registry);
                }
                run.run()
            })
        };
        self.run_inner(labels, job)
    }

    /// Executes `count` closure jobs on the same queue machinery —
    /// timeout, panic isolation, stealing and progress all apply. This
    /// is the harness the queue tests and throughput benches drive;
    /// scenario sweeps go through [`run_jobs`](SweepRunner::run_jobs).
    pub fn run_fn(
        &self,
        count: usize,
        job: impl Fn(usize) -> Result<RunReport, SimError> + Send + Sync + 'static,
    ) -> Vec<JobOutcome> {
        self.run_inner((0..count).map(|index| format!("#{index}")).collect(), job)
    }

    fn run_inner(
        &self,
        labels: Vec<String>,
        job: impl Fn(usize) -> Result<RunReport, SimError> + Send + Sync + 'static,
    ) -> Vec<JobOutcome> {
        let count = labels.len();
        if count == 0 {
            return Vec::new();
        }
        let job: Arc<dyn Fn(usize) -> Result<RunReport, SimError> + Send + Sync> = Arc::new(job);
        let workers = self.threads.min(count);
        let queue = StealQueue::deal(workers, count);
        let metrics = self.obs.as_ref().map(SweepMetrics::registered);
        if let Some(metrics) = &metrics {
            metrics.queue_depth.set(i64::try_from(count).unwrap_or(i64::MAX));
        }
        let mut slots: Vec<Option<JobOutcome>> = Vec::new();
        slots.resize_with(count, || None);
        let slots = Mutex::new(slots);
        let worker_loop = |worker: usize| {
            // dlk-lint: allow(DLK003): idle/busy split is observability only
            let mut mark = Instant::now();
            while let Some((index, stolen)) = queue.pop(worker) {
                if let Some(metrics) = &metrics {
                    metrics.worker_idle_ns.add(elapsed_ns(mark));
                    metrics.queue_depth.add(-1);
                    mark = Instant::now(); // dlk-lint: allow(DLK003): telemetry mark
                }
                let outcome = self.execute_one(index, labels[index].clone(), worker, stolen, &job);
                let keep_going = self.progress.as_ref().is_none_or(|progress| progress(&outcome));
                if let Some(metrics) = &metrics {
                    metrics.jobs.inc();
                    metrics
                        .job_wall_us
                        .record(u64::try_from(outcome.wall.as_micros()).unwrap_or(u64::MAX));
                    metrics.worker_busy_ns.add(elapsed_ns(mark));
                    mark = Instant::now(); // dlk-lint: allow(DLK003): telemetry mark
                }
                slots.lock().expect("sweep slots")[index] = Some(outcome);
                if let Some(sampler) = &self.sampler {
                    sampler.lock().expect("sweep sampler").tick();
                }
                if !keep_going {
                    queue.cancel();
                }
            }
            if let Some(metrics) = &metrics {
                metrics.worker_idle_ns.add(elapsed_ns(mark));
            }
        };
        if workers == 1 {
            worker_loop(0);
        } else {
            std::thread::scope(|scope| {
                for worker in 0..workers {
                    let worker_loop = &worker_loop;
                    scope.spawn(move || worker_loop(worker));
                }
            });
        }
        if let Some(metrics) = &metrics {
            metrics.steals.add(queue.steals.load(Ordering::Relaxed));
            // Cancelled jobs are never popped; the queue is drained
            // regardless once the workers return.
            metrics.queue_depth.set(0);
        }
        slots
            .into_inner()
            .expect("sweep slots")
            .into_iter()
            .enumerate()
            .map(|(index, slot)| {
                slot.unwrap_or_else(|| JobOutcome::cancelled(index, labels[index].clone()))
            })
            .collect()
    }

    fn execute_one(
        &self,
        index: usize,
        label: String,
        worker: usize,
        stolen: bool,
        job: &Arc<dyn Fn(usize) -> Result<RunReport, SimError> + Send + Sync>,
    ) -> JobOutcome {
        // dlk-lint: allow(DLK003): job wall-clock is reported, never fed back
        let start = Instant::now();
        let report = match self.timeout {
            None => flatten(catch_unwind(AssertUnwindSafe(|| job(index)))),
            Some(limit) => {
                // The only way to bound a job's wall clock without
                // cooperative checks inside the scenario: run it on a
                // watchdog thread and wait with a deadline. On timeout
                // the thread is detached; it finishes eventually and
                // its result is dropped with the dead channel.
                let (sender, receiver) = mpsc::channel();
                let job = Arc::clone(job);
                std::thread::spawn(move || {
                    let result = catch_unwind(AssertUnwindSafe(|| job(index)));
                    let _ = sender.send(result);
                });
                match receiver.recv_timeout(limit) {
                    Ok(result) => flatten(result),
                    Err(_) => Err(JobError::TimedOut(limit)),
                }
            }
        };
        JobOutcome { index, label, worker: Some(worker), stolen, wall: start.elapsed(), report }
    }

    /// Executes every spec and returns results in spec order.
    pub fn run(&self, specs: &[ScenarioSpec]) -> Vec<SweepResult> {
        specs
            .iter()
            .zip(self.run_jobs(specs))
            .map(|(spec, outcome)| SweepResult {
                spec: spec.clone(),
                report: outcome.report.map_err(|err| match err {
                    JobError::Scenario(e) => e,
                    other => SimError::Build(other.to_string()),
                }),
            })
            .collect()
    }

    /// Executes every spec and returns just the reports (in spec
    /// order), failing on the first scenario error.
    ///
    /// # Errors
    ///
    /// Returns the first failing spec's error, by spec order.
    pub fn run_reports(&self, specs: &[ScenarioSpec]) -> Result<Vec<RunReport>, SimError> {
        self.run(specs).into_iter().map(|result| result.report).collect()
    }
}

fn flatten(
    result: std::thread::Result<Result<RunReport, SimError>>,
) -> Result<RunReport, JobError> {
    match result {
        Ok(Ok(report)) => Ok(report),
        Ok(Err(err)) => Err(JobError::Scenario(err)),
        Err(panic) => Err(JobError::Panicked(panic_message(&*panic))),
    }
}

/// Extracts the human-readable payload of a caught panic.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(msg) = panic.downcast_ref::<&str>() {
        (*msg).to_owned()
    } else if let Some(msg) = panic.downcast_ref::<String>() {
        msg.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::victim::VictimSpec;

    fn base() -> ScenarioSpec {
        ScenarioSpec {
            victims: vec![(VictimSpec::row(20, 0xA5), 0)],
            attack: Some(AttackSpec::Hammer { bit: 7 }),
            ..ScenarioSpec::new("grid")
        }
    }

    #[test]
    fn unset_axes_expand_to_the_base_spec() {
        let specs = SweepGrid::over(base()).expand();
        assert_eq!(specs, vec![base()]);
    }

    #[test]
    fn axes_multiply_and_label_deterministically() {
        let specs = SweepGrid::over(base())
            .channels([1, 2, 4])
            .defenses([vec![], vec![DefenseSpec::locker_adjacent()]])
            .expand();
        assert_eq!(specs.len(), 6);
        let labels: Vec<&str> = specs.iter().map(|s| s.label.as_str()).collect();
        assert_eq!(
            labels,
            [
                "grid/none/1ch",
                "grid/none/2ch",
                "grid/none/4ch",
                "grid/dram-locker/1ch",
                "grid/dram-locker/2ch",
                "grid/dram-locker/4ch",
            ]
        );
        assert_eq!(specs[2].engine.channels, 4);
        assert!(specs[2].defenses.is_empty() && !specs[5].defenses.is_empty());
    }

    #[test]
    fn model_axis_swaps_every_model_victim() {
        use dlk_dnn::models::ModelKind;
        let base = ScenarioSpec {
            victims: vec![
                (VictimSpec::model(ModelKind::Tiny, 42, 0x400), 0),
                (VictimSpec::row(20, 0xA5), 0),
            ],
            ..ScenarioSpec::new("models")
        };
        let specs = SweepGrid::over(base).models([ModelKind::TinyCnn]).expand();
        assert_eq!(specs[0].victims[0].0.model_kind(), Some(ModelKind::TinyCnn));
        assert_eq!(specs[0].victims[1].0.model_kind(), None);
        assert_eq!(specs[0].label, "models/tiny-cnn");
    }

    fn failing_job(index: usize) -> Result<RunReport, SimError> {
        Err(SimError::Build(format!("job {index}")))
    }

    #[test]
    fn panics_are_isolated_to_their_job() {
        let outcomes = SweepRunner::with_threads(2).run_fn(4, |index| {
            assert!(index != 2, "deliberate poison");
            failing_job(index)
        });
        assert_eq!(outcomes.len(), 4);
        assert_eq!(outcomes[2].status(), JobStatus::Panicked);
        assert!(
            matches!(&outcomes[2].report, Err(JobError::Panicked(msg)) if msg.contains("poison"))
        );
        for index in [0, 1, 3] {
            assert_eq!(outcomes[index].status(), JobStatus::Failed, "worker survived the panic");
        }
    }

    #[test]
    fn timeouts_fire_per_job_and_spare_the_rest() {
        let outcomes =
            SweepRunner::with_threads(2).timeout(Duration::from_millis(40)).run_fn(3, |index| {
                if index == 1 {
                    std::thread::sleep(Duration::from_secs(5));
                }
                failing_job(index)
            });
        assert_eq!(outcomes[1].status(), JobStatus::TimedOut);
        assert_eq!(outcomes[0].status(), JobStatus::Failed);
        assert_eq!(outcomes[2].status(), JobStatus::Failed);
        assert!(outcomes[1].wall >= Duration::from_millis(40));
    }

    #[test]
    fn progress_streams_every_job_once_and_can_cancel() {
        let seen = Arc::new(Mutex::new(Vec::new()));
        let outcomes = {
            let seen = Arc::clone(&seen);
            SweepRunner::with_threads(2)
                .on_progress(move |job| {
                    seen.lock().unwrap().push(job.index);
                    true
                })
                .run_fn(8, failing_job)
        };
        let mut seen = seen.lock().unwrap().clone();
        seen.sort_unstable();
        assert_eq!(seen, (0..8).collect::<Vec<_>>());
        assert!(outcomes.iter().all(|o| o.status() == JobStatus::Failed));

        // A cancelling callback: after the first completion the queue
        // stops handing out jobs; unexecuted slots come back Cancelled.
        let outcomes = SweepRunner::serial().on_progress(|_| false).run_fn(5, failing_job);
        assert_eq!(outcomes[0].status(), JobStatus::Failed);
        assert!(outcomes[1..].iter().all(|o| o.status() == JobStatus::Cancelled));
        assert!(outcomes[1..].iter().all(|o| o.worker.is_none()));
    }

    #[test]
    fn idle_workers_steal_queued_jobs() {
        // 2 workers, 8 jobs dealt 4+4; worker 0's first job sleeps, so
        // worker 1 must steal from worker 0's tail to finish the rest.
        let outcomes = SweepRunner::with_threads(2).run_fn(8, |index| {
            if index == 0 {
                std::thread::sleep(Duration::from_millis(120));
            }
            failing_job(index)
        });
        assert_eq!(outcomes.len(), 8);
        assert!(
            outcomes.iter().any(|o| o.stolen),
            "an idle worker should have stolen from the sleeper's deque"
        );
        assert!(outcomes.iter().all(|o| o.worker.is_some()));
    }

    #[test]
    fn observed_runner_populates_queue_metrics() {
        let registry = Registry::new();
        let outcomes = {
            let registry = registry.clone();
            SweepRunner::with_threads(2).observe(&registry).run_fn(8, |index| {
                if index == 0 {
                    std::thread::sleep(Duration::from_millis(60));
                }
                failing_job(index)
            })
        };
        assert_eq!(outcomes.len(), 8);
        assert_eq!(registry.counter("sweep.jobs").get(), 8);
        assert_eq!(registry.histogram("sweep.job_wall_us").count(), 8);
        assert!(registry.counter("sweep.worker_busy_ns").get() > 0);
        assert_eq!(registry.gauge("sweep.queue_depth").get(), 0);
        let stolen = outcomes.iter().filter(|o| o.stolen).count() as u64;
        assert_eq!(registry.counter("sweep.steals").get(), stolen);
    }

    #[test]
    fn sampled_runner_ticks_once_per_completed_job() {
        let registry = Registry::new();
        let sampler = Arc::new(Mutex::new(Sampler::new(&registry, 16)));
        let outcomes =
            SweepRunner::with_threads(2).observe(&registry).sample(&sampler).run_fn(6, failing_job);
        assert_eq!(outcomes.len(), 6);
        let sampler = sampler.lock().unwrap();
        let jobs = sampler.get("sweep.jobs").expect("jobs series");
        assert_eq!(jobs.len(), 6, "one tick per completion");
        assert_eq!(jobs.last().unwrap().value, 6.0);
        // Depth was sampled on the way down and the busy/idle split
        // became series alongside the queue counters.
        assert!(sampler.get("sweep.queue_depth").is_some());
        assert!(sampler.get("sweep.worker_busy_ns").is_some());
        assert!(sampler.get("sweep.job_wall_us.p95").is_some());
    }

    #[test]
    fn observed_scenario_sweep_threads_registry_into_runs() {
        let registry = Registry::new();
        let results = SweepRunner::serial().observe(&registry).run(&[base()]);
        assert!(results[0].report.is_ok());
        // The scenario's engine/controller metrics landed in the same
        // registry the queue reports into.
        assert!(registry.counter("memctrl.served").get() > 0);
        assert_eq!(registry.counter("sweep.jobs").get(), 1);
    }

    #[test]
    fn runner_reports_errors_in_order_without_aborting_the_rest() {
        let bad = ScenarioSpec::new("no-victim");
        let results = SweepRunner::with_threads(2).run(&[bad.clone(), base()]);
        assert_eq!(results.len(), 2);
        assert!(results[0].report.is_err());
        assert!(results[1].report.is_ok());
        assert!(SweepRunner::serial().run_reports(&[bad]).is_err());
    }
}
