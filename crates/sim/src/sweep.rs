//! Grid expansion and parallel execution over scenario specs.
//!
//! The paper's results are grids — attack × defense × geometry sweeps
//! reported as tables and figures. [`SweepGrid`] expands axes over a
//! base [`ScenarioSpec`] into a flat, deterministic spec list;
//! [`SweepRunner`] executes any spec list across scoped worker threads
//! and returns results in spec order, bit-identical to running each
//! spec serially (scenarios share no state, and each one's engine is
//! already deterministic). Feed the reports to
//! [`metrics::Table`](crate::metrics::Table) for CSV/markdown export.
//!
//! ```
//! use dlk_sim::sweep::{SweepGrid, SweepRunner};
//! use dlk_sim::{metrics, DefenseSpec};
//!
//! # fn main() -> Result<(), dlk_sim::SimError> {
//! let base = dlk_sim::find("hammer-vs-none")?.spec;
//! let specs = SweepGrid::over(base)
//!     .channels([1, 2])
//!     .defenses([vec![], vec![DefenseSpec::locker_adjacent()]])
//!     .expand();
//! assert_eq!(specs.len(), 4);
//! let results = SweepRunner::parallel().run(&specs);
//! let reports: Vec<_> = results.iter().filter_map(|r| r.report.as_ref().ok()).collect();
//! let csv = metrics::Table::from_reports(reports.iter().copied()).to_csv();
//! assert_eq!(csv.lines().count(), 1 + 4);
//! # Ok(())
//! # }
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use dlk_dnn::models::ModelKind;

use crate::error::SimError;
use crate::report::RunReport;
use crate::scenario::Scenario;
use crate::spec::{AttackSpec, DefenseSpec, ScenarioSpec};

/// Expands axes over a base spec into the cartesian spec list.
///
/// Every axis is optional; an unset axis keeps the base spec's value.
/// Expansion order is deterministic: models (outermost) × attacks ×
/// defense stacks × channels (innermost), each in the order given.
/// Labels append one `/`-separated segment per set axis, so each
/// expanded spec is self-describing in reports and tables.
#[derive(Debug, Clone)]
pub struct SweepGrid {
    base: ScenarioSpec,
    channels: Vec<usize>,
    defenses: Vec<Vec<DefenseSpec>>,
    attacks: Vec<AttackSpec>,
    models: Vec<ModelKind>,
}

impl SweepGrid {
    /// A grid over `base` with no axes set (expands to just `base`).
    pub fn over(base: ScenarioSpec) -> Self {
        Self {
            base,
            channels: Vec::new(),
            defenses: Vec::new(),
            attacks: Vec::new(),
            models: Vec::new(),
        }
    }

    /// Sweeps the engine's channel count. Parallelism within one run
    /// follows the base spec's engine (`parallel` flag); a 1-channel
    /// point is the classic serial pipeline.
    pub fn channels(mut self, channels: impl IntoIterator<Item = usize>) -> Self {
        self.channels = channels.into_iter().collect();
        self
    }

    /// Sweeps the defense stack (each element is one whole stack; use
    /// `vec![]` for the undefended point).
    pub fn defenses(mut self, stacks: impl IntoIterator<Item = Vec<DefenseSpec>>) -> Self {
        self.defenses = stacks.into_iter().collect();
        self
    }

    /// Sweeps the attack.
    pub fn attacks(mut self, attacks: impl IntoIterator<Item = AttackSpec>) -> Self {
        self.attacks = attacks.into_iter().collect();
        self
    }

    /// Sweeps the victim model kind (applied to every model-backed
    /// victim of the base spec, keeping each victim's seed and layout).
    pub fn models(mut self, models: impl IntoIterator<Item = ModelKind>) -> Self {
        self.models = models.into_iter().collect();
        self
    }

    /// The expanded spec list.
    pub fn expand(&self) -> Vec<ScenarioSpec> {
        // Each axis expands to "keep the base value" when unset; `None`
        // marks the kept point so labels only grow for real axes.
        fn axis<T: Clone>(values: &[T]) -> Vec<Option<T>> {
            if values.is_empty() {
                vec![None]
            } else {
                values.iter().cloned().map(Some).collect()
            }
        }
        let mut specs = Vec::new();
        for model in axis(&self.models) {
            for attack in axis(&self.attacks) {
                for stack in axis(&self.defenses) {
                    for channels in axis(&self.channels) {
                        let mut spec = self.base.clone();
                        let mut label = spec.label.clone();
                        if let Some(model) = model {
                            for (victim, _) in &mut spec.victims {
                                *victim = victim.with_model_kind(model);
                            }
                            label.push_str(&format!("/{}", model.token()));
                        }
                        if let Some(attack) = &attack {
                            spec.attack = Some(attack.clone());
                            label.push_str(&format!("/{}", attack.token()));
                        }
                        if let Some(stack) = &stack {
                            spec.defenses = stack.clone();
                            let stack_label = if stack.is_empty() {
                                "none".to_owned()
                            } else {
                                stack.iter().map(DefenseSpec::name).collect::<Vec<_>>().join("+")
                            };
                            label.push_str(&format!("/{stack_label}"));
                        }
                        if let Some(channels) = channels {
                            spec.engine.channels = channels;
                            label.push_str(&format!("/{channels}ch"));
                        }
                        spec.label = label;
                        specs.push(spec);
                    }
                }
            }
        }
        specs
    }
}

/// One executed point of a sweep.
#[derive(Debug)]
pub struct SweepResult {
    /// The spec that ran.
    pub spec: ScenarioSpec,
    /// Its report, or the build/run failure.
    pub report: Result<RunReport, SimError>,
}

/// Executes spec lists, optionally across scoped worker threads.
///
/// Results always come back in spec order, and each run is independent
/// (own engine, own trained victim clones), so the parallel result set
/// is bit-identical to the serial one — the determinism suite asserts
/// exactly that.
#[derive(Debug, Clone, Copy)]
pub struct SweepRunner {
    threads: usize,
}

impl SweepRunner {
    /// Runs every spec on the calling thread, in order.
    pub fn serial() -> Self {
        Self { threads: 1 }
    }

    /// Runs specs across one worker per available core.
    pub fn parallel() -> Self {
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        Self { threads }
    }

    /// Runs specs across exactly `threads` workers (at least one).
    pub fn with_threads(threads: usize) -> Self {
        Self { threads: threads.max(1) }
    }

    /// The worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Executes every spec and returns results in spec order.
    pub fn run(&self, specs: &[ScenarioSpec]) -> Vec<SweepResult> {
        let execute = |spec: &ScenarioSpec| Scenario::from_spec(spec).and_then(|mut run| run.run());
        if self.threads == 1 || specs.len() <= 1 {
            return specs
                .iter()
                .map(|spec| SweepResult { spec: spec.clone(), report: execute(spec) })
                .collect();
        }
        let next = AtomicUsize::new(0);
        let mut slots: Vec<Option<Result<RunReport, SimError>>> = Vec::new();
        slots.resize_with(specs.len(), || None);
        let slots = Mutex::new(slots);
        std::thread::scope(|scope| {
            for _ in 0..self.threads.min(specs.len()) {
                scope.spawn(|| loop {
                    // Work-stealing by index: whichever worker picks a
                    // spec, its result lands in that spec's slot, so
                    // scheduling never reorders results.
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    let Some(spec) = specs.get(index) else { break };
                    let report = execute(spec);
                    slots.lock().expect("sweep result lock")[index] = Some(report);
                });
            }
        });
        let slots = slots.into_inner().expect("sweep result lock");
        specs
            .iter()
            .zip(slots)
            .map(|(spec, report)| SweepResult {
                spec: spec.clone(),
                report: report.expect("every index was executed"),
            })
            .collect()
    }

    /// Executes every spec and returns just the reports (in spec
    /// order), failing on the first scenario error.
    ///
    /// # Errors
    ///
    /// Returns the first failing spec's error, by spec order.
    pub fn run_reports(&self, specs: &[ScenarioSpec]) -> Result<Vec<RunReport>, SimError> {
        self.run(specs).into_iter().map(|result| result.report).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::victim::VictimSpec;

    fn base() -> ScenarioSpec {
        ScenarioSpec {
            victims: vec![(VictimSpec::row(20, 0xA5), 0)],
            attack: Some(AttackSpec::Hammer { bit: 7 }),
            ..ScenarioSpec::new("grid")
        }
    }

    #[test]
    fn unset_axes_expand_to_the_base_spec() {
        let specs = SweepGrid::over(base()).expand();
        assert_eq!(specs, vec![base()]);
    }

    #[test]
    fn axes_multiply_and_label_deterministically() {
        let specs = SweepGrid::over(base())
            .channels([1, 2, 4])
            .defenses([vec![], vec![DefenseSpec::locker_adjacent()]])
            .expand();
        assert_eq!(specs.len(), 6);
        let labels: Vec<&str> = specs.iter().map(|s| s.label.as_str()).collect();
        assert_eq!(
            labels,
            [
                "grid/none/1ch",
                "grid/none/2ch",
                "grid/none/4ch",
                "grid/dram-locker/1ch",
                "grid/dram-locker/2ch",
                "grid/dram-locker/4ch",
            ]
        );
        assert_eq!(specs[2].engine.channels, 4);
        assert!(specs[2].defenses.is_empty() && !specs[5].defenses.is_empty());
    }

    #[test]
    fn model_axis_swaps_every_model_victim() {
        use dlk_dnn::models::ModelKind;
        let base = ScenarioSpec {
            victims: vec![
                (VictimSpec::model(ModelKind::Tiny, 42, 0x400), 0),
                (VictimSpec::row(20, 0xA5), 0),
            ],
            ..ScenarioSpec::new("models")
        };
        let specs = SweepGrid::over(base).models([ModelKind::TinyCnn]).expand();
        assert_eq!(specs[0].victims[0].0.model_kind(), Some(ModelKind::TinyCnn));
        assert_eq!(specs[0].victims[1].0.model_kind(), None);
        assert_eq!(specs[0].label, "models/tiny-cnn");
    }

    #[test]
    fn runner_reports_errors_in_order_without_aborting_the_rest() {
        let bad = ScenarioSpec::new("no-victim");
        let results = SweepRunner::with_threads(2).run(&[bad.clone(), base()]);
        assert_eq!(results.len(), 2);
        assert!(results[0].report.is_err());
        assert!(results[1].report.is_ok());
        assert!(SweepRunner::serial().run_reports(&[bad]).is_err());
    }
}
