//! The unified run report.

use dlk_dnn::BitIndex;
use dlk_memctrl::ControllerStats;

/// What the attack itself observed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AttackOutcome {
    /// Bit flips the attack actually landed.
    pub landed_flips: u64,
    /// Attacker-side requests issued.
    pub requests: u64,
    /// Attacker requests denied by the defense (hardware hook or OS).
    pub denied: u64,
    /// A page translation was corrupted (page-table attacks).
    pub redirected: bool,
    /// Weight bits the attack targeted (chosen, whether or not landed).
    pub target_bits: Vec<BitIndex>,
    /// Weight bits whose flips landed.
    pub flipped_bits: Vec<BitIndex>,
    /// Accuracy trajectory: `(iteration, accuracy %)` per iteration,
    /// for progressive attacks.
    pub curve: Vec<(f64, f64)>,
}

impl AttackOutcome {
    /// `true` if the defense blocked every attacker request.
    pub fn fully_denied(&self) -> bool {
        self.denied > 0 && self.denied == self.requests
    }
}

/// Per-victim outcome.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VictimReport {
    /// Accuracy (%) before the attack (model-backed victims).
    pub accuracy_before_pct: Option<f64>,
    /// Accuracy (%) after the attack, measured by reloading the model
    /// from the device through the controller.
    pub accuracy_after_pct: Option<f64>,
    /// Raw-row victims: the data pattern survived (read back through
    /// the controller, following defense redirects).
    pub data_intact: Option<bool>,
}

impl VictimReport {
    /// Accuracy lost to the attack, in percentage points (0 when not
    /// applicable).
    pub fn accuracy_delta_pct(&self) -> f64 {
        match (self.accuracy_before_pct, self.accuracy_after_pct) {
            (Some(before), Some(after)) => before - after,
            _ => 0.0,
        }
    }

    /// `true` if this victim was observably harmed.
    pub fn harmed(&self) -> bool {
        self.data_intact == Some(false) || self.accuracy_delta_pct() > 5.0
    }
}

/// Defensive actions one mounted mitigation took during the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MitigationReport {
    /// The mitigation's name.
    pub name: String,
    /// Mitigation-specific action count (denies + swaps for
    /// DRAM-Locker, targeted refreshes for counter trackers, row swaps
    /// for RRS/SRS/SHADOW).
    pub actions: u64,
}

/// The unified report every scenario run produces.
///
/// `PartialEq` is intentional infrastructure: a sharded multi-channel
/// run must produce a report *equal* to its serial reference, and the
/// determinism suite asserts exactly that.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Scenario label.
    pub scenario: String,
    /// Attack name (empty when the scenario ran without one).
    pub attack: String,
    /// DRAM channels the scenario ran over (shards of the engine).
    pub channels: usize,
    /// Names of the mounted defenses, in mount order.
    pub defenses: Vec<String>,
    /// Flips the attack landed.
    pub landed_flips: u64,
    /// Attacker-side requests issued.
    pub requests: u64,
    /// Attacker requests denied.
    pub denied: u64,
    /// A page translation was corrupted.
    pub redirected: bool,
    /// Weight bits the attack targeted.
    pub target_bits: Vec<BitIndex>,
    /// Weight bits whose flips landed.
    pub flipped_bits: Vec<BitIndex>,
    /// Accuracy trajectory of progressive attacks.
    pub curve: Vec<(f64, f64)>,
    /// Device cycles consumed up to the end of the attack phase
    /// (measurement probes excluded).
    pub cycles: u64,
    /// DRAM energy in picojoules up to the end of the attack phase.
    pub energy_pj: f64,
    /// Controller statistics at the end of the attack phase.
    pub controller: ControllerStats,
    /// Per-victim outcomes, in deployment order.
    pub victims: Vec<VictimReport>,
    /// Per-defense action counts, in mount order.
    pub mitigations: Vec<MitigationReport>,
}

impl RunReport {
    /// The first (primary) victim's report.
    pub fn victim(&self) -> &VictimReport {
        &self.victims[0]
    }

    /// `true` if the defense blocked every attacker request.
    pub fn fully_denied(&self) -> bool {
        self.denied > 0 && self.denied == self.requests
    }

    /// Accuracy lost by the primary victim, percentage points.
    pub fn accuracy_delta_pct(&self) -> f64 {
        self.victims.first().map(VictimReport::accuracy_delta_pct).unwrap_or(0.0)
    }

    /// Total defensive actions across all mounted mitigations.
    pub fn mitigation_total(&self) -> u64 {
        self.mitigations.iter().map(|m| m.actions).sum()
    }

    /// `true` if any victim was observably harmed (data corrupted,
    /// accuracy down more than 5 points, or a translation redirected).
    pub fn harmed(&self) -> bool {
        self.redirected || self.victims.iter().any(VictimReport::harmed)
    }

    /// The scalar column names of [`to_csv_row`](RunReport::to_csv_row),
    /// comma-joined. Per-defense action counts are folded into the one
    /// `mitigations` column (`name:count` pairs); the sweep-level
    /// [`metrics::Table`](crate::metrics::Table) splits them into real
    /// columns instead.
    pub fn csv_header() -> &'static str {
        "scenario,attack,channels,defenses,requests,denied,landed_flips,redirected,\
         accuracy_before_pct,accuracy_after_pct,accuracy_delta_pct,data_intact,\
         cycles,energy_pj,mitigations"
    }

    /// This report as one CSV row matching
    /// [`csv_header`](RunReport::csv_header).
    pub fn to_csv_row(&self) -> String {
        self.csv_cells().iter().map(|cell| csv_escape(cell)).collect::<Vec<_>>().join(",")
    }

    /// The cells of [`to_csv_row`](RunReport::to_csv_row), raw and
    /// unjoined (shared with the sweep metrics table, which escapes —
    /// like `to_csv_row` — only at CSV-serialization time).
    pub(crate) fn csv_cells(&self) -> Vec<String> {
        let victim = self.victims.first();
        let opt_pct = |v: Option<f64>| v.map(|p| format!("{p:.2}")).unwrap_or_default();
        let mitigations = self
            .mitigations
            .iter()
            .map(|m| format!("{}:{}", m.name, m.actions))
            .collect::<Vec<_>>()
            .join("+");
        vec![
            self.scenario.clone(),
            self.attack.clone(),
            self.channels.to_string(),
            self.defenses.join("+"),
            self.requests.to_string(),
            self.denied.to_string(),
            self.landed_flips.to_string(),
            self.redirected.to_string(),
            opt_pct(victim.and_then(|v| v.accuracy_before_pct)),
            opt_pct(victim.and_then(|v| v.accuracy_after_pct)),
            format!("{:.2}", self.accuracy_delta_pct()),
            victim.and_then(|v| v.data_intact).map(|intact| intact.to_string()).unwrap_or_default(),
            self.cycles.to_string(),
            format!("{:.1}", self.energy_pj),
            mitigations,
        ]
    }
}

/// Quotes a CSV cell when it contains a delimiter or quote.
pub(crate) fn csv_escape(cell: &str) -> String {
    if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_owned()
    }
}

/// An aligned, human-readable rendering of the whole report — what the
/// examples print instead of hand-formatting fields.
impl std::fmt::Display for RunReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let defenses =
            if self.defenses.is_empty() { "none".to_owned() } else { self.defenses.join("+") };
        writeln!(f, "scenario        {}", self.scenario)?;
        writeln!(f, "attack          {}", if self.attack.is_empty() { "-" } else { &self.attack })?;
        writeln!(f, "channels        {}", self.channels)?;
        writeln!(f, "defenses        {defenses}")?;
        writeln!(
            f,
            "requests        {} ({} denied, {} flips landed)",
            self.requests, self.denied, self.landed_flips
        )?;
        writeln!(f, "redirected      {}", self.redirected)?;
        writeln!(f, "cycles          {}", self.cycles)?;
        writeln!(f, "energy          {:.2} nJ", self.energy_pj / 1000.0)?;
        for (index, victim) in self.victims.iter().enumerate() {
            let accuracy = match (victim.accuracy_before_pct, victim.accuracy_after_pct) {
                (Some(before), Some(after)) => format!("accuracy {before:.1}% -> {after:.1}%"),
                _ => match victim.data_intact {
                    Some(true) => "data intact".to_owned(),
                    Some(false) => "data corrupted".to_owned(),
                    None => "no measurement".to_owned(),
                },
            };
            writeln!(f, "victim {index}        {accuracy}")?;
        }
        for mitigation in &self.mitigations {
            writeln!(f, "defense actions {} = {}", mitigation.name, mitigation.actions)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harm_combines_victims_and_redirects() {
        let mut report = RunReport {
            scenario: "t".into(),
            attack: "a".into(),
            channels: 1,
            defenses: vec![],
            landed_flips: 0,
            requests: 0,
            denied: 0,
            redirected: false,
            target_bits: vec![],
            flipped_bits: vec![],
            curve: vec![],
            cycles: 0,
            energy_pj: 0.0,
            controller: ControllerStats::default(),
            victims: vec![VictimReport {
                accuracy_before_pct: Some(90.0),
                accuracy_after_pct: Some(88.0),
                data_intact: None,
            }],
            mitigations: vec![],
        };
        assert!(!report.harmed(), "2-point wobble is not harm");
        report.victims[0].accuracy_after_pct = Some(40.0);
        assert!(report.harmed());
        report.victims[0].accuracy_after_pct = Some(90.0);
        report.redirected = true;
        assert!(report.harmed());
    }

    #[test]
    fn fully_denied_requires_requests() {
        let outcome = AttackOutcome::default();
        assert!(!outcome.fully_denied());
    }

    fn sample_report() -> RunReport {
        RunReport {
            scenario: "csv, quoted".into(),
            attack: "hammer".into(),
            channels: 2,
            defenses: vec!["dram-locker".into(), "graphene".into()],
            landed_flips: 0,
            requests: 100,
            denied: 100,
            redirected: false,
            target_bits: vec![],
            flipped_bits: vec![],
            curve: vec![],
            cycles: 1234,
            energy_pj: 5678.9,
            controller: ControllerStats::default(),
            victims: vec![VictimReport {
                accuracy_before_pct: None,
                accuracy_after_pct: None,
                data_intact: Some(true),
            }],
            mitigations: vec![MitigationReport { name: "dram-locker".into(), actions: 7 }],
        }
    }

    #[test]
    fn csv_row_matches_header_arity_and_escapes() {
        let report = sample_report();
        let header_cols = RunReport::csv_header().split(',').count();
        // The quoted scenario cell contains a comma; count via cells.
        assert_eq!(report.csv_cells().len(), header_cols);
        let row = report.to_csv_row();
        assert!(row.starts_with("\"csv, quoted\",hammer,2,dram-locker+graphene,100,100,0,false"));
        assert!(row.contains("dram-locker:7"));
    }

    #[test]
    fn display_is_aligned_and_complete() {
        let text = sample_report().to_string();
        assert!(text.contains("scenario        csv, quoted"), "{text}");
        assert!(text.contains("defenses        dram-locker+graphene"));
        assert!(text.contains("victim 0        data intact"));
        assert!(text.contains("defense actions dram-locker = 7"));
    }
}
