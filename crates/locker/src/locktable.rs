//! The SRAM lock-table.
//!
//! Counter-based RowHammer defenses (Graphene, Hydra, TWiCE, ...) keep a
//! *count table*: per-row activation counters that trigger mitigation on
//! overflow. DRAM-Locker replaces counting entirely: the lock-table
//! stores only *membership* — the addresses of rows that must not be
//! activated. A lookup answers "is this row locked?" in one SRAM access;
//! there is no counter state to update, saturate or reset.

use std::collections::HashSet;

use dlk_dram::RowId;

use crate::error::LockerError;

/// The lock-table: a capacity-bounded set of locked rows.
///
/// # Example
///
/// ```
/// use dlk_locker::LockTable;
/// use dlk_dram::RowId;
///
/// # fn main() -> Result<(), dlk_locker::LockerError> {
/// let mut table = LockTable::new(1024);
/// table.lock(RowId(7))?;
/// assert!(table.is_locked(RowId(7)));
/// table.unlock(RowId(7));
/// assert!(!table.is_locked(RowId(7)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct LockTable {
    locked: HashSet<RowId>,
    capacity: usize,
    lookups: u64,
    hits: u64,
}

impl LockTable {
    /// Creates a lock-table holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        Self { locked: HashSet::new(), capacity, lookups: 0, hits: 0 }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of locked rows.
    pub fn len(&self) -> usize {
        self.locked.len()
    }

    /// Whether no rows are locked.
    pub fn is_empty(&self) -> bool {
        self.locked.is_empty()
    }

    /// Locks a row.
    ///
    /// # Errors
    ///
    /// Returns [`LockerError::TableFull`] at capacity. Locking an
    /// already-locked row is a no-op (idempotent).
    pub fn lock(&mut self, row: RowId) -> Result<(), LockerError> {
        if self.locked.contains(&row) {
            return Ok(());
        }
        if self.locked.len() >= self.capacity {
            return Err(LockerError::TableFull { capacity: self.capacity });
        }
        self.locked.insert(row);
        Ok(())
    }

    /// Unlocks a row. Returns `true` if it was locked.
    pub fn unlock(&mut self, row: RowId) -> bool {
        self.locked.remove(&row)
    }

    /// Membership check *with* statistics — the hardware lookup on the
    /// request path. Use [`LockTable::peek`] for introspection that
    /// should not perturb stats.
    pub fn is_locked(&mut self, row: RowId) -> bool {
        self.lookups += 1;
        let hit = self.locked.contains(&row);
        if hit {
            self.hits += 1;
        }
        hit
    }

    /// Membership check without touching statistics.
    pub fn peek(&self, row: RowId) -> bool {
        self.locked.contains(&row)
    }

    /// Total lookups performed.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Lookups that found a locked row.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Iterates over the locked rows (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = RowId> + '_ {
        self.locked.iter().copied()
    }

    /// Unlocks everything.
    pub fn clear(&mut self) {
        self.locked.clear();
    }

    /// SRAM bytes consumed at `entry_bytes` per entry.
    pub fn sram_bytes(&self, entry_bytes: usize) -> usize {
        self.locked.len() * entry_bytes
    }
}

impl Extend<RowId> for LockTable {
    /// Extends the table, silently stopping at capacity (use
    /// [`LockTable::lock`] for error reporting).
    fn extend<T: IntoIterator<Item = RowId>>(&mut self, iter: T) {
        for row in iter {
            if self.lock(row).is_err() {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_unlock_cycle() {
        let mut table = LockTable::new(8);
        assert!(table.is_empty());
        table.lock(RowId(1)).unwrap();
        table.lock(RowId(2)).unwrap();
        assert_eq!(table.len(), 2);
        assert!(table.is_locked(RowId(1)));
        assert!(!table.is_locked(RowId(3)));
        assert!(table.unlock(RowId(1)));
        assert!(!table.unlock(RowId(1)));
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn locking_is_idempotent() {
        let mut table = LockTable::new(1);
        table.lock(RowId(5)).unwrap();
        table.lock(RowId(5)).unwrap(); // no error at capacity: same row
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn capacity_enforced() {
        let mut table = LockTable::new(2);
        table.lock(RowId(1)).unwrap();
        table.lock(RowId(2)).unwrap();
        let err = table.lock(RowId(3)).unwrap_err();
        assert_eq!(err, LockerError::TableFull { capacity: 2 });
    }

    #[test]
    fn stats_track_lookups_and_hits() {
        let mut table = LockTable::new(8);
        table.lock(RowId(1)).unwrap();
        table.is_locked(RowId(1));
        table.is_locked(RowId(2));
        table.peek(RowId(1)); // must not count
        assert_eq!(table.lookups(), 2);
        assert_eq!(table.hits(), 1);
    }

    #[test]
    fn extend_stops_at_capacity() {
        let mut table = LockTable::new(3);
        table.extend((0..10).map(RowId));
        assert_eq!(table.len(), 3);
    }

    #[test]
    fn sram_accounting() {
        let mut table = LockTable::new(1000);
        table.extend((0..100).map(RowId));
        assert_eq!(table.sram_bytes(8), 800);
    }

    #[test]
    fn paper_sram_budget_covers_thousands_of_rows() {
        // 56 KB at 8 B/entry = 7168 lockable rows — plenty for the
        // adjacent rows of a DNN's vulnerable weights.
        let capacity = 56 * 1024 / 8;
        let mut table = LockTable::new(capacity);
        table.extend((0..capacity as u64).map(RowId));
        assert_eq!(table.len(), 7168);
    }
}
