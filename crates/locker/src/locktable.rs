//! The SRAM lock-table.
//!
//! Counter-based RowHammer defenses (Graphene, Hydra, TWiCE, ...) keep a
//! *count table*: per-row activation counters that trigger mitigation on
//! overflow. DRAM-Locker replaces counting entirely: the lock-table
//! stores only *membership* — the addresses of rows that must not be
//! activated. A lookup answers "is this row locked?" in one SRAM access;
//! there is no counter state to update, saturate or reset.
//!
//! The table is an open-addressed hash set modelling that SRAM: dense
//! `RowId` slots whose count is the capacity rounded up to a power of
//! two (at most half full, so probe chains stay short), mask-indexed
//! by a Fibonacci-mixed hash with linear probing. Each probe step
//! evaluates occupancy and key equality branch-free and exits through
//! a single predictable branch; lookup/hit counters live in [`Cell`]s
//! so the request-path probe takes `&self` — there is no
//! `is_locked(&mut self)` / `peek(&self)` split anymore. The
//! pre-refactor behavioural twin survives as
//! [`reference::ScanLockTable`], the oracle for the stats-identity
//! tests and the `benches/hot_path.rs` probe throughput pin.

use std::cell::Cell;

use dlk_dram::RowId;

use crate::error::LockerError;

/// Multiplicative (Fibonacci) hash: spreads sequential row ids across
/// the table while keeping the probe index computation to one multiply
/// and one shift.
const HASH_MUL: u64 = 0x9E37_79B9_7F4A_7C15;

/// The lock-table: a capacity-bounded set of locked rows.
///
/// # Example
///
/// ```
/// use dlk_locker::LockTable;
/// use dlk_dram::RowId;
///
/// # fn main() -> Result<(), dlk_locker::LockerError> {
/// let mut table = LockTable::new(1024);
/// table.lock(RowId(7))?;
/// assert!(table.is_locked(RowId(7)));
/// table.unlock(RowId(7));
/// assert!(!table.is_locked(RowId(7)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LockTable {
    /// Slot keys (`RowId` values); meaningful only where the
    /// corresponding `occupied` bit is set.
    keys: Vec<u64>,
    /// One occupancy bit per slot, packed 64 per word.
    occupied: Vec<u64>,
    /// `slots - 1`; slot count is a power of two.
    mask: usize,
    /// High-bits shift of the multiplicative hash.
    shift: u32,
    len: usize,
    capacity: usize,
    lookups: Cell<u64>,
    hits: Cell<u64>,
    /// `(lookups, hits)` already pushed to a registry by
    /// [`LockTable::export_obs`], so repeated exports add deltas only.
    exported: Cell<(u64, u64)>,
}

impl Default for LockTable {
    /// An empty zero-capacity table (every lock is denied).
    fn default() -> Self {
        Self::new(0)
    }
}

impl LockTable {
    /// Creates a lock-table holding at most `capacity` entries. The
    /// slot array is `capacity` rounded up to the next power of two,
    /// doubled — the table never exceeds half occupancy, which bounds
    /// linear-probe chains.
    pub fn new(capacity: usize) -> Self {
        let slots = (capacity.max(1) * 2).next_power_of_two();
        Self {
            keys: vec![0; slots],
            occupied: vec![0; slots.div_ceil(64)],
            mask: slots - 1,
            shift: 64 - slots.trailing_zeros(),
            len: 0,
            capacity,
            lookups: Cell::new(0),
            hits: Cell::new(0),
            exported: Cell::new((0, 0)),
        }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of locked rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no rows are locked.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of physical slots (power of two; ≥ 2 × capacity).
    pub fn slots(&self) -> usize {
        self.mask + 1
    }

    #[inline]
    fn home_slot(&self, key: u64) -> usize {
        (key.wrapping_mul(HASH_MUL) >> self.shift) as usize & self.mask
    }

    #[inline]
    fn occupied_bit(&self, slot: usize) -> bool {
        self.occupied[slot >> 6] >> (slot & 63) & 1 == 1
    }

    fn set_occupied(&mut self, slot: usize) {
        self.occupied[slot >> 6] |= 1 << (slot & 63);
    }

    fn clear_occupied(&mut self, slot: usize) {
        self.occupied[slot >> 6] &= !(1 << (slot & 63));
    }

    /// Linear probe for `key`: returns `(slot, found)` where `slot` is
    /// either the key's slot or the first empty slot of its chain.
    /// Occupancy and key equality are evaluated branch-free; the loop
    /// exits through one predictable branch per step. Terminates
    /// because the table is never more than half full.
    #[inline]
    fn probe(&self, key: u64) -> (usize, bool) {
        let mut slot = self.home_slot(key);
        loop {
            let occupied = self.occupied_bit(slot);
            let hit = occupied & (self.keys[slot] == key);
            if !occupied | hit {
                return (slot, hit);
            }
            slot = (slot + 1) & self.mask;
        }
    }

    /// Locks a row.
    ///
    /// # Errors
    ///
    /// Returns [`LockerError::TableFull`] at capacity. Locking an
    /// already-locked row is a no-op (idempotent).
    pub fn lock(&mut self, row: RowId) -> Result<(), LockerError> {
        let (slot, found) = self.probe(row.0);
        if found {
            return Ok(());
        }
        if self.len >= self.capacity {
            return Err(LockerError::TableFull { capacity: self.capacity });
        }
        self.keys[slot] = row.0;
        self.set_occupied(slot);
        self.len += 1;
        Ok(())
    }

    /// Unlocks a row. Returns `true` if it was locked.
    pub fn unlock(&mut self, row: RowId) -> bool {
        let (slot, found) = self.probe(row.0);
        if !found {
            return false;
        }
        self.remove_slot(slot);
        true
    }

    /// Deletes the entry at `slot` with the classic backward-shift so
    /// no probe chain is ever broken by a tombstone.
    fn remove_slot(&mut self, mut slot: usize) {
        self.len -= 1;
        loop {
            self.clear_occupied(slot);
            let mut next = slot;
            loop {
                next = (next + 1) & self.mask;
                if !self.occupied_bit(next) {
                    return;
                }
                let home = self.home_slot(self.keys[next]);
                // `next`'s key may move into the hole at `slot` iff its
                // home slot is cyclically outside (slot, next].
                if (next.wrapping_sub(home) & self.mask) >= (next.wrapping_sub(slot) & self.mask) {
                    self.keys[slot] = self.keys[next];
                    self.set_occupied(slot);
                    slot = next;
                    break;
                }
            }
        }
    }

    /// Membership check *with* statistics — the hardware lookup on the
    /// request path. Takes `&self`: the counters are interior, so
    /// read-only holders of the table can still issue counted probes.
    /// Use [`LockTable::peek`] for introspection that should not
    /// perturb stats.
    #[inline]
    pub fn is_locked(&self, row: RowId) -> bool {
        self.lookups.set(self.lookups.get() + 1);
        let (_, hit) = self.probe(row.0);
        self.hits.set(self.hits.get() + u64::from(hit));
        hit
    }

    /// Membership check without touching statistics.
    #[inline]
    pub fn peek(&self, row: RowId) -> bool {
        self.probe(row.0).1
    }

    /// Pushes the probe counters into `registry` as
    /// `<prefix>.lookups` / `<prefix>.hits`. Only the delta since the
    /// previous export is added, so calling this after every run (the
    /// scenario runner does) never double-counts — this is how the
    /// table's private `Cell` counters surface in `metrics.json` and
    /// the `--trace` exposition.
    pub fn export_obs(&self, registry: &dlk_obs::Registry, prefix: &str) {
        let (prev_lookups, prev_hits) = self.exported.get();
        let (lookups, hits) = (self.lookups.get(), self.hits.get());
        registry.counter(&format!("{prefix}.lookups")).add(lookups.saturating_sub(prev_lookups));
        registry.counter(&format!("{prefix}.hits")).add(hits.saturating_sub(prev_hits));
        self.exported.set((lookups, hits));
    }

    /// Total lookups performed.
    pub fn lookups(&self) -> u64 {
        self.lookups.get()
    }

    /// Lookups that found a locked row.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Iterates over the locked rows (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = RowId> + '_ {
        (0..=self.mask).filter(|&slot| self.occupied_bit(slot)).map(|slot| RowId(self.keys[slot]))
    }

    /// Unlocks everything.
    pub fn clear(&mut self) {
        self.occupied.fill(0);
        self.len = 0;
    }

    /// SRAM bytes consumed at `entry_bytes` per entry.
    pub fn sram_bytes(&self, entry_bytes: usize) -> usize {
        self.len * entry_bytes
    }
}

impl Extend<RowId> for LockTable {
    /// Extends the table, silently stopping at capacity (use
    /// [`LockTable::lock`] for error reporting).
    fn extend<T: IntoIterator<Item = RowId>>(&mut self, iter: T) {
        for row in iter {
            if self.lock(row).is_err() {
                break;
            }
        }
    }
}

/// Pre-refactor oracles, kept for equivalence tests and benches.
#[doc(hidden)]
pub mod reference {
    use dlk_dram::RowId;

    use crate::error::LockerError;

    /// The scalar scan lock-table: a plain `Vec` probed linearly, with
    /// the seed's `is_locked(&mut self)` signature. Behaviourally
    /// identical to [`LockTable`](super::LockTable) — the stats-parity
    /// tests replay recorded probe sequences against both.
    #[derive(Debug, Clone, Default)]
    pub struct ScanLockTable {
        locked: Vec<u64>,
        capacity: usize,
        lookups: u64,
        hits: u64,
    }

    impl ScanLockTable {
        /// Creates a table holding at most `capacity` entries.
        pub fn new(capacity: usize) -> Self {
            Self { locked: Vec::new(), capacity, lookups: 0, hits: 0 }
        }

        /// Locks a row (idempotent), failing at capacity.
        ///
        /// # Errors
        ///
        /// Returns [`LockerError::TableFull`] at capacity.
        pub fn lock(&mut self, row: RowId) -> Result<(), LockerError> {
            if self.locked.contains(&row.0) {
                return Ok(());
            }
            if self.locked.len() >= self.capacity {
                return Err(LockerError::TableFull { capacity: self.capacity });
            }
            self.locked.push(row.0);
            Ok(())
        }

        /// Unlocks a row. Returns `true` if it was locked.
        pub fn unlock(&mut self, row: RowId) -> bool {
            match self.locked.iter().position(|&id| id == row.0) {
                Some(index) => {
                    self.locked.swap_remove(index);
                    true
                }
                None => false,
            }
        }

        /// Counted membership scan.
        pub fn is_locked(&mut self, row: RowId) -> bool {
            self.lookups += 1;
            let hit = self.locked.contains(&row.0);
            if hit {
                self.hits += 1;
            }
            hit
        }

        /// Number of locked rows.
        pub fn len(&self) -> usize {
            self.locked.len()
        }

        /// Whether no rows are locked.
        pub fn is_empty(&self) -> bool {
            self.locked.is_empty()
        }

        /// Total lookups performed.
        pub fn lookups(&self) -> u64 {
            self.lookups
        }

        /// Lookups that found a locked row.
        pub fn hits(&self) -> u64 {
            self.hits
        }
    }
}

#[cfg(test)]
mod tests {
    use super::reference::ScanLockTable;
    use super::*;

    #[test]
    fn export_obs_adds_deltas_only() {
        let registry = dlk_obs::Registry::new();
        let mut table = LockTable::new(8);
        table.lock(RowId(1)).unwrap();
        table.is_locked(RowId(1)); // hit
        table.is_locked(RowId(2)); // miss
        table.export_obs(&registry, "locker.locktable");
        assert_eq!(registry.counter("locker.locktable.lookups").get(), 2);
        assert_eq!(registry.counter("locker.locktable.hits").get(), 1);
        // A second export with no new probes adds nothing...
        table.export_obs(&registry, "locker.locktable");
        assert_eq!(registry.counter("locker.locktable.lookups").get(), 2);
        // ...and new probes export as deltas.
        table.is_locked(RowId(1));
        table.export_obs(&registry, "locker.locktable");
        assert_eq!(registry.counter("locker.locktable.lookups").get(), 3);
        assert_eq!(registry.counter("locker.locktable.hits").get(), 2);
    }

    #[test]
    fn lock_unlock_cycle() {
        let mut table = LockTable::new(8);
        assert!(table.is_empty());
        table.lock(RowId(1)).unwrap();
        table.lock(RowId(2)).unwrap();
        assert_eq!(table.len(), 2);
        assert!(table.is_locked(RowId(1)));
        assert!(!table.is_locked(RowId(3)));
        assert!(table.unlock(RowId(1)));
        assert!(!table.unlock(RowId(1)));
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn locking_is_idempotent() {
        let mut table = LockTable::new(1);
        table.lock(RowId(5)).unwrap();
        table.lock(RowId(5)).unwrap(); // no error at capacity: same row
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn capacity_enforced() {
        let mut table = LockTable::new(2);
        table.lock(RowId(1)).unwrap();
        table.lock(RowId(2)).unwrap();
        let err = table.lock(RowId(3)).unwrap_err();
        assert_eq!(err, LockerError::TableFull { capacity: 2 });
    }

    #[test]
    fn stats_track_lookups_and_hits() {
        let mut table = LockTable::new(8);
        table.lock(RowId(1)).unwrap();
        table.is_locked(RowId(1));
        table.is_locked(RowId(2));
        table.peek(RowId(1)); // must not count
        assert_eq!(table.lookups(), 2);
        assert_eq!(table.hits(), 1);
    }

    #[test]
    fn probe_works_through_a_shared_reference() {
        let mut table = LockTable::new(8);
        table.lock(RowId(9)).unwrap();
        let shared: &LockTable = &table;
        assert!(shared.is_locked(RowId(9)));
        assert!(!shared.is_locked(RowId(10)));
        assert_eq!(shared.lookups(), 2);
        assert_eq!(shared.hits(), 1);
    }

    #[test]
    fn extend_stops_at_capacity() {
        let mut table = LockTable::new(3);
        table.extend((0..10).map(RowId));
        assert_eq!(table.len(), 3);
    }

    #[test]
    fn sram_accounting() {
        let mut table = LockTable::new(1000);
        table.extend((0..100).map(RowId));
        assert_eq!(table.sram_bytes(8), 800);
    }

    #[test]
    fn paper_sram_budget_covers_thousands_of_rows() {
        // 56 KB at 8 B/entry = 7168 lockable rows — plenty for the
        // adjacent rows of a DNN's vulnerable weights.
        let capacity = 56 * 1024 / 8;
        let mut table = LockTable::new(capacity);
        table.extend((0..capacity as u64).map(RowId));
        assert_eq!(table.len(), 7168);
    }

    #[test]
    fn slot_count_rounds_to_power_of_two() {
        // capacity 0: still a valid (always-full) table.
        let mut empty = LockTable::new(0);
        assert_eq!(
            empty.lock(RowId(1)).unwrap_err(),
            LockerError::TableFull { capacity: 0 },
            "capacity-0 tables reject every lock"
        );
        assert!(!empty.is_locked(RowId(1)));
        assert_eq!(empty.slots(), 2);
        // capacity 1 and assorted non-powers-of-two.
        for (capacity, slots) in [(1, 2), (2, 4), (3, 8), (5, 16), (7168, 16384), (1000, 2048)] {
            let table = LockTable::new(capacity);
            assert_eq!(table.slots(), slots, "capacity {capacity}");
            assert!(table.slots().is_power_of_two());
            assert!(table.slots() >= 2 * capacity);
        }
    }

    #[test]
    fn full_table_denies_and_still_probes_correctly() {
        // A full table's probe chains must terminate (≤ half of the
        // slots are occupied) and report exact membership.
        let capacity = 13;
        let mut table = LockTable::new(capacity);
        for row in 0..capacity as u64 {
            table.lock(RowId(row * 1_000_003)).unwrap();
        }
        assert!(table.lock(RowId(42)).is_err(), "full table denies new locks");
        for row in 0..capacity as u64 {
            assert!(table.is_locked(RowId(row * 1_000_003)));
        }
        assert!(!table.is_locked(RowId(42)));
        assert!(!table.is_locked(RowId(u64::MAX)));
    }

    #[test]
    fn backward_shift_deletion_keeps_chains_probeable() {
        // Colliding keys (same home slot) form one probe chain;
        // deleting the head must not orphan the tail.
        let mut table = LockTable::new(64);
        let rows: Vec<RowId> = (0..48u64).map(|i| RowId(i * 7 + 1)).collect();
        for &row in &rows {
            table.lock(row).unwrap();
        }
        // Remove every third entry, then verify all remaining ones.
        for chunk in rows.chunks(3) {
            assert!(table.unlock(chunk[0]));
        }
        for (index, &row) in rows.iter().enumerate() {
            assert_eq!(table.is_locked(row), index % 3 != 0, "row {row:?}");
        }
        assert_eq!(table.len(), 32);
    }

    /// Replaying one recorded probe/lock/unlock sequence against the
    /// open-addressed table and the scalar scan oracle yields
    /// identical results and identical `lookups`/`hits` statistics.
    #[test]
    fn stats_identical_to_scan_reference_under_recorded_sequence() {
        for capacity in [0usize, 1, 2, 5, 64] {
            let mut table = LockTable::new(capacity);
            let mut oracle = ScanLockTable::new(capacity);
            // A deterministic mixed op tape: lock / probe / unlock over
            // a small row universe so hits, misses, collisions and
            // capacity denials all occur.
            let mut state = 0x2545_F491_4F6C_DD1Du64;
            for step in 0..4096u64 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let row = RowId(state >> 40 & 0x3F);
                match step % 5 {
                    0 => assert_eq!(table.lock(row).is_ok(), oracle.lock(row).is_ok()),
                    4 => assert_eq!(table.unlock(row), oracle.unlock(row)),
                    _ => assert_eq!(table.is_locked(row), oracle.is_locked(row)),
                }
                assert_eq!(table.len(), oracle.len());
            }
            assert_eq!(table.lookups(), oracle.lookups(), "capacity {capacity}");
            assert_eq!(table.hits(), oracle.hits(), "capacity {capacity}");
            assert!(table.lookups() > 2000);
        }
    }

    #[test]
    fn iter_and_clear_cover_all_slots() {
        let mut table = LockTable::new(16);
        table.extend([3, 11, 200, 7].into_iter().map(RowId));
        let mut seen: Vec<u64> = table.iter().map(|row| row.0).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![3, 7, 11, 200]);
        table.clear();
        assert!(table.is_empty());
        assert_eq!(table.iter().count(), 0);
        assert!(!table.peek(RowId(3)));
        // The table is reusable after clear.
        table.lock(RowId(3)).unwrap();
        assert!(table.is_locked(RowId(3)));
    }
}
