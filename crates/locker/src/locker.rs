//! The DRAM-Locker defense hook.
//!
//! [`DramLocker`] implements [`DefenseHook`]:
//!
//! - every request pays the one-cycle lock-table lookup;
//! - *untrusted* accesses to locked rows are denied — the instruction
//!   is skipped, so the attacker's hammer loop never activates the row;
//! - *trusted* (program) accesses to locked rows trigger a SWAP: the
//!   row's data moves to a randomly chosen free row of the same
//!   subarray and the access is redirected there. Until the re-lock
//!   deadline, further accesses are transparently redirected;
//! - after `relock_interval` R/W instructions the data is swapped back
//!   to its home row (Fig. 4(d)).
//!
//! Trust is an address-origin distinction, not a privilege check: the
//! locked rows are (by the protection plan) rows the victim program
//! *owns*, so its own accesses legitimately unlock them, while an
//! attacker process hammering those physical rows has no unlock path.

use std::collections::{HashMap, HashSet, VecDeque};

use dlk_dram::{DramDevice, DramGeometry, RowAddr, RowId};
use dlk_memctrl::{DefenseHook, HookAction, MemRequest};

use crate::config::LockerConfig;
use crate::error::LockerError;
use crate::locktable::LockTable;
use crate::sequence::Sequence;
use crate::stats::LockerStats;
use crate::swap::SwapEngine;

#[derive(Debug, Clone, Copy)]
struct MovedEntry {
    /// Where the locked row's data currently lives.
    current: RowAddr,
    /// The home (locked) row.
    home: RowAddr,
}

/// The DRAM-Locker defense (see crate docs and the paper's §IV).
///
/// # Example
///
/// ```
/// use dlk_dram::{DramGeometry, RowAddr};
/// use dlk_locker::{DramLocker, LockerConfig};
///
/// # fn main() -> Result<(), dlk_locker::LockerError> {
/// let geometry = DramGeometry::tiny();
/// let mut locker = DramLocker::new(LockerConfig::default(), geometry);
/// locker.lock_row(RowAddr::new(0, 0, 10))?;
/// assert_eq!(locker.lock_table().len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct DramLocker {
    config: LockerConfig,
    geometry: DramGeometry,
    table: LockTable,
    engine: SwapEngine,
    sequence: Sequence,
    /// Locked home row -> current data location.
    moved: HashMap<RowId, MovedEntry>,
    /// Free-pool rows currently holding moved data.
    free_in_use: HashSet<RowId>,
    /// Re-lock deadlines: (due_at_rw_count, home row id).
    relock_queue: VecDeque<(u64, RowId)>,
    stats: LockerStats,
}

impl DramLocker {
    /// Creates a locker for the given DRAM geometry.
    pub fn new(config: LockerConfig, geometry: DramGeometry) -> Self {
        Self {
            table: LockTable::new(config.table_capacity_entries()),
            engine: SwapEngine::new(&config),
            sequence: Sequence::new(),
            moved: HashMap::new(),
            free_in_use: HashSet::new(),
            relock_queue: VecDeque::new(),
            stats: LockerStats::default(),
            geometry,
            config,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &LockerConfig {
        &self.config
    }

    /// The DRAM geometry the locker was built for.
    pub fn geometry(&self) -> &DramGeometry {
        &self.geometry
    }

    /// The lock-table (read-only).
    pub fn lock_table(&self) -> &LockTable {
        &self.table
    }

    /// Surfaces the defense's interior counters in `registry`:
    /// lock-table probe traffic under `<prefix>.locktable.*`. Deltas
    /// only — safe to call after every run (the scenario runner does).
    pub fn export_obs(&self, registry: &dlk_obs::Registry, prefix: &str) {
        self.table.export_obs(registry, &format!("{prefix}.locktable"));
    }

    /// Runtime statistics.
    pub fn stats(&self) -> &LockerStats {
        &self.stats
    }

    /// The instruction sequence (skip accounting).
    pub fn sequence(&self) -> &Sequence {
        &self.sequence
    }

    /// Locks a row.
    ///
    /// # Errors
    ///
    /// Returns [`LockerError::TableFull`] if the SRAM budget is spent,
    /// or [`LockerError::Dram`] for addresses outside the geometry.
    pub fn lock_row(&mut self, row: RowAddr) -> Result<(), LockerError> {
        if !self.geometry.contains(row) {
            return Err(LockerError::Dram(dlk_dram::DramError::InvalidRow(row)));
        }
        self.table.lock(self.geometry.row_id(row))
    }

    /// Unlocks a row (removing any active indirection bookkeeping is
    /// the caller's responsibility — normally rows are unlocked only
    /// when the protected object is freed).
    pub fn unlock_row(&mut self, row: RowAddr) -> bool {
        self.table.unlock(self.geometry.row_id(row))
    }

    /// Locks every row overlapping the physical byte range
    /// `[start, end)` under the bank-sequential address mapping.
    ///
    /// # Errors
    ///
    /// Returns [`LockerError::BadRange`] for empty ranges and
    /// [`LockerError::TableFull`] when the SRAM budget is spent.
    pub fn lock_phys_range(&mut self, start: u64, end: u64) -> Result<usize, LockerError> {
        if start >= end {
            return Err(LockerError::BadRange { start, end });
        }
        let row_bytes = self.geometry.row_bytes as u64;
        let mut locked = 0;
        for global_row in (start / row_bytes)..=((end - 1) / row_bytes) {
            let rows = self.geometry.rows_per_subarray as u64;
            let row = (global_row % rows) as u32;
            let sa_global = global_row / rows;
            let subarray = (sa_global % self.geometry.subarrays_per_bank as u64) as u16;
            let bank = (sa_global / self.geometry.subarrays_per_bank as u64) as u16;
            self.lock_row(RowAddr::new(bank, subarray, row))?;
            locked += 1;
        }
        Ok(locked)
    }

    /// Where the data of `home` currently lives (after a SWAP), if it
    /// has been moved out.
    pub fn current_location(&self, home: RowAddr) -> Option<RowAddr> {
        self.moved.get(&self.geometry.row_id(home)).map(|entry| entry.current)
    }

    /// Number of rows whose data is currently swapped out.
    pub fn moved_count(&self) -> usize {
        self.moved.len()
    }

    fn perform_swap(
        &mut self,
        home: RowAddr,
        dram: &mut DramDevice,
    ) -> Result<RowAddr, LockerError> {
        let free = self.engine.pick_free_row(&self.geometry, home, &self.free_in_use)?;
        let outcome = self.engine.execute(dram, home, free)?;
        self.stats.swaps += 1;
        self.stats.copies_issued += 3;
        self.stats.swap_cycles += outcome.cycles;
        self.stats.swap_energy_pj += outcome.energy_pj;
        if !outcome.success {
            self.stats.swap_failures += 1;
            self.stats.failed_copies += outcome.failed_copies.len() as u64;
        }
        for instruction in outcome.program.instructions() {
            self.sequence.push_micro(*instruction);
            self.sequence.pop();
        }
        let home_id = self.geometry.row_id(home);
        let free_id = self.geometry.row_id(free);
        self.moved.insert(home_id, MovedEntry { current: free, home });
        self.free_in_use.insert(free_id);
        self.relock_queue.push_back((self.stats.rw_seen + self.config.relock_interval, home_id));
        Ok(free)
    }

    fn service_relocks(&mut self, dram: &mut DramDevice) {
        while let Some(&(due, home_id)) = self.relock_queue.front() {
            if self.stats.rw_seen < due {
                break;
            }
            self.relock_queue.pop_front();
            let Some(entry) = self.moved.remove(&home_id) else { continue };
            self.free_in_use.remove(&self.geometry.row_id(entry.current));
            // Swap the data back home; errors here count like any SWAP.
            match self.engine.execute(dram, entry.current, entry.home) {
                Ok(outcome) => {
                    self.stats.relocks += 1;
                    self.stats.copies_issued += 3;
                    self.stats.swap_cycles += outcome.cycles;
                    self.stats.swap_energy_pj += outcome.energy_pj;
                    if !outcome.success {
                        self.stats.swap_failures += 1;
                        self.stats.failed_copies += outcome.failed_copies.len() as u64;
                    }
                }
                Err(_) => {
                    // Leave the indirection in place on hard failure.
                    self.moved.insert(home_id, entry);
                    self.free_in_use.insert(self.geometry.row_id(entry.current));
                    break;
                }
            }
        }
    }
}

impl DefenseHook for DramLocker {
    fn before_access(
        &mut self,
        request: &MemRequest,
        target: RowAddr,
        dram: &mut DramDevice,
    ) -> HookAction {
        self.stats.rw_seen += 1;
        self.service_relocks(dram);
        let id = self.geometry.row_id(target);
        self.sequence.push_rw(id, false);

        if !self.table.is_locked(id) {
            self.sequence.pop();
            return HookAction::Allow;
        }
        if request.untrusted {
            // Attacker access to a locked row: skip the instruction.
            self.sequence.skip();
            self.stats.denies += 1;
            return HookAction::Deny;
        }
        self.sequence.pop();
        if let Some(entry) = self.moved.get(&id) {
            // Already unlocked by an earlier SWAP: follow the move.
            self.stats.redirects += 1;
            return HookAction::Redirect(entry.current);
        }
        match self.perform_swap(target, dram) {
            Ok(free) => {
                self.stats.redirects += 1;
                HookAction::Redirect(free)
            }
            // Pool exhausted: fail closed. Protection beats availability.
            Err(_) => {
                self.stats.denies += 1;
                HookAction::Deny
            }
        }
    }

    fn check_latency(&self) -> u64 {
        self.config.check_cycles
    }

    fn name(&self) -> &str {
        "dram-locker"
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlk_dram::DramConfig;

    fn setup() -> (DramLocker, DramDevice) {
        let config = DramConfig::tiny_for_tests();
        let locker = DramLocker::new(LockerConfig::default(), config.geometry);
        (locker, DramDevice::new(config))
    }

    fn read_req(untrusted: bool) -> MemRequest {
        let req = MemRequest::read(0, 1);
        if untrusted {
            req.untrusted()
        } else {
            req
        }
    }

    #[test]
    fn unlocked_rows_flow_through() {
        let (mut locker, mut dram) = setup();
        let action = locker.before_access(&read_req(false), RowAddr::new(0, 0, 5), &mut dram);
        assert_eq!(action, HookAction::Allow);
        assert_eq!(locker.stats().rw_seen, 1);
    }

    #[test]
    fn attacker_denied_on_locked_row() {
        let (mut locker, mut dram) = setup();
        let row = RowAddr::new(0, 0, 5);
        locker.lock_row(row).unwrap();
        let action = locker.before_access(&read_req(true), row, &mut dram);
        assert_eq!(action, HookAction::Deny);
        assert_eq!(locker.stats().denies, 1);
        assert_eq!(locker.sequence().skipped(), 1);
        // No activation reached the DRAM.
        assert_eq!(dram.stats().total_activations(), 0);
    }

    #[test]
    fn trusted_access_triggers_swap_and_redirect() {
        let (mut locker, mut dram) = setup();
        let row = RowAddr::new(0, 0, 5);
        dram.write_row(row, &[0x77; 64]).unwrap();
        locker.lock_row(row).unwrap();
        let action = locker.before_access(&read_req(false), row, &mut dram);
        let HookAction::Redirect(new_row) = action else {
            panic!("expected redirect, got {action:?}");
        };
        assert_ne!(new_row, row);
        assert_eq!(new_row.subarray, row.subarray, "swap stays in the subarray");
        // The data followed the swap.
        assert_eq!(dram.read_row(new_row).unwrap(), vec![0x77; 64]);
        assert_eq!(locker.stats().swaps, 1);
        assert_eq!(locker.moved_count(), 1);
        // Three AAP copies were issued.
        assert_eq!(dram.stats().count(dlk_dram::CommandKind::Aap), 3);
    }

    #[test]
    fn second_trusted_access_reuses_indirection() {
        let (mut locker, mut dram) = setup();
        let row = RowAddr::new(0, 0, 5);
        locker.lock_row(row).unwrap();
        let first = locker.before_access(&read_req(false), row, &mut dram);
        let second = locker.before_access(&read_req(false), row, &mut dram);
        assert_eq!(first, second, "same redirect target, no second swap");
        assert_eq!(locker.stats().swaps, 1);
        assert_eq!(locker.stats().redirects, 2);
    }

    #[test]
    fn relock_swaps_data_home_after_interval() {
        let config = DramConfig::tiny_for_tests();
        let locker_config = LockerConfig { relock_interval: 10, ..LockerConfig::default() };
        let mut locker = DramLocker::new(locker_config, config.geometry);
        let mut dram = DramDevice::new(config);
        let row = RowAddr::new(0, 0, 5);
        dram.write_row(row, &[0x42; 64]).unwrap();
        locker.lock_row(row).unwrap();
        locker.before_access(&read_req(false), row, &mut dram);
        assert_eq!(locker.moved_count(), 1);
        // Generate interval-many R/W instructions elsewhere.
        for i in 0..10 {
            locker.before_access(&read_req(false), RowAddr::new(0, 0, 20 + i), &mut dram);
        }
        assert_eq!(locker.moved_count(), 0, "data must be re-locked");
        assert_eq!(locker.stats().relocks, 1);
        assert_eq!(dram.read_row(row).unwrap(), vec![0x42; 64], "data back home");
        // Next trusted access swaps again.
        locker.before_access(&read_req(false), row, &mut dram);
        assert_eq!(locker.stats().swaps, 2);
    }

    #[test]
    fn attacker_denied_even_while_data_moved() {
        let (mut locker, mut dram) = setup();
        let row = RowAddr::new(0, 0, 5);
        locker.lock_row(row).unwrap();
        locker.before_access(&read_req(false), row, &mut dram); // swap out
        let action = locker.before_access(&read_req(true), row, &mut dram);
        assert_eq!(action, HookAction::Deny, "home row stays locked after swap");
    }

    #[test]
    fn pool_exhaustion_fails_closed() {
        let config = DramConfig::tiny_for_tests();
        let locker_config = LockerConfig {
            free_rows_per_subarray: 1,
            relock_interval: 1_000_000,
            ..LockerConfig::default()
        };
        let mut locker = DramLocker::new(locker_config, config.geometry);
        let mut dram = DramDevice::new(config);
        let a = RowAddr::new(0, 0, 5);
        let b = RowAddr::new(0, 0, 6);
        locker.lock_row(a).unwrap();
        locker.lock_row(b).unwrap();
        assert!(matches!(
            locker.before_access(&read_req(false), a, &mut dram),
            HookAction::Redirect(_)
        ));
        // Pool (1 row) is now in use; next unlock attempt must deny.
        assert_eq!(locker.before_access(&read_req(false), b, &mut dram), HookAction::Deny);
    }

    #[test]
    fn lock_phys_range_locks_covering_rows() {
        let (mut locker, _) = setup();
        // Rows are 64 bytes in the tiny geometry; lock 3 rows' worth.
        let locked = locker.lock_phys_range(64, 64 * 4).unwrap();
        assert_eq!(locked, 3);
        assert_eq!(locker.lock_table().len(), 3);
        assert!(locker.lock_phys_range(10, 10).is_err());
    }

    #[test]
    fn out_of_geometry_lock_rejected() {
        let (mut locker, _) = setup();
        assert!(locker.lock_row(RowAddr::new(50, 0, 0)).is_err());
    }

    #[test]
    fn check_latency_is_one_cycle_sram_lookup() {
        let (locker, _) = setup();
        assert_eq!(locker.check_latency(), 1);
    }
}
