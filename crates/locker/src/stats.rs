//! DRAM-Locker runtime statistics.

use serde::{Deserialize, Serialize};

/// Counters describing the defense's runtime behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LockerStats {
    /// R/W instructions observed on the request path.
    pub rw_seen: u64,
    /// Accesses denied because the row was locked.
    pub denies: u64,
    /// SWAP operations issued (unlock a row's data).
    pub swaps: u64,
    /// SWAPs containing at least one erroneous row copy.
    pub swap_failures: u64,
    /// Individual row copies that failed (process variation).
    pub failed_copies: u64,
    /// Swap-back operations (data returned to its locked home row).
    pub relocks: u64,
    /// Accesses transparently redirected to a row's current location.
    pub redirects: u64,
    /// Row-copy µOps issued to DRAM (3 per SWAP/relock).
    pub copies_issued: u64,
    /// Device cycles spent inside SWAP/relock sequences.
    pub swap_cycles: u64,
    /// Energy spent inside SWAP/relock sequences, picojoules.
    pub swap_energy_pj: f64,
}

impl LockerStats {
    /// Fraction of SWAPs that had at least one erroneous copy.
    pub fn swap_failure_rate(&self) -> f64 {
        let total = self.swaps + self.relocks;
        if total == 0 {
            0.0
        } else {
            self.swap_failures as f64 / total as f64
        }
    }

    /// Mean cycles per SWAP (including relocks).
    pub fn mean_swap_cycles(&self) -> f64 {
        let total = self.swaps + self.relocks;
        if total == 0 {
            0.0
        } else {
            self.swap_cycles as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_are_zero_when_idle() {
        let stats = LockerStats::default();
        assert_eq!(stats.swap_failure_rate(), 0.0);
        assert_eq!(stats.mean_swap_cycles(), 0.0);
    }

    #[test]
    fn failure_rate_over_all_swap_kinds() {
        let stats = LockerStats { swaps: 3, relocks: 1, swap_failures: 1, ..Default::default() };
        assert!((stats.swap_failure_rate() - 0.25).abs() < 1e-12);
    }
}
