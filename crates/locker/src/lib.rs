//! # dlk-locker — the DRAM-Locker defense mechanism
//!
//! The paper's contribution: a general-purpose DRAM protection scheme
//! against adversarial DNN weight attacks (BFA and page-table attacks).
//!
//! The core idea: record the rows to protect in a small SRAM
//! [`LockTable`]. Any access to a locked row without an accompanying
//! unlock is *denied* — the instruction is skipped, so an attacker's
//! hammer loop never activates the row. When the legitimate program
//! needs a locked row's data, DRAM-Locker issues a **SWAP** — three
//! RowClone copies through a buffer row — moving the data to a free,
//! unlocked row and installing an address indirection. After a
//! configurable number of R/W instructions (1k in the paper) the data
//! is swapped back and re-locked.
//!
//! Modules:
//!
//! - [`locktable`]: the SRAM lock-table (no counters — that is the
//!   point; compare `dlk-defenses`' counter-based baselines);
//! - [`isa`]: the 16-bit instruction set of Fig. 5 (`AAP` row copy,
//!   `bnez`, `done`) plus a micro-program executor;
//! - [`sequence`]: the instruction Sequence that buffers R/W and µOps;
//! - [`swap`]: the three-copy SWAP engine with process-variation error
//!   injection;
//! - [`locker`]: [`DramLocker`], the
//!   [`DefenseHook`](dlk_memctrl::DefenseHook) gluing it all together;
//! - [`software`]: the user-facing protection API ("protect these
//!   weight ranges") that compiles address ranges into lock entries.
//!
//! ## Example
//!
//! ```
//! use dlk_locker::{DramLocker, LockerConfig};
//! use dlk_memctrl::{MemCtrlConfig, MemoryController, MemRequest};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = MemCtrlConfig::tiny_for_tests();
//! let mut locker = DramLocker::new(LockerConfig::default(), config.dram.geometry);
//! let row_bytes = config.dram.geometry.row_bytes as u64;
//! // Lock physical row 10 (byte range [10*row, 11*row)).
//! locker.lock_phys_range(10 * row_bytes, 11 * row_bytes)?;
//! let mut ctrl = MemoryController::with_hook(config, Box::new(locker));
//! // An attacker's access to the locked row is denied.
//! let denied = ctrl.service(MemRequest::read(10 * row_bytes, 1).untrusted())?;
//! assert!(denied.denied);
//! # Ok(())
//! # }
//! ```

pub mod config;
pub mod error;
pub mod isa;
pub mod locker;
pub mod locktable;
pub mod sequence;
pub mod software;
pub mod stats;
pub mod swap;

pub use crate::config::{LockTarget, LockerConfig};
pub use crate::error::LockerError;
pub use crate::isa::{
    CompiledProgram, Instruction, IsaError, MicroExecutor, MicroProgram, PackedOp, ProgramCache,
    RegFile,
};
pub use crate::locker::DramLocker;
pub use crate::locktable::LockTable;
pub use crate::sequence::{Sequence, SequenceEntry};
pub use crate::software::ProtectionPlan;
pub use crate::stats::LockerStats;
pub use crate::swap::{SwapEngine, SwapOutcome};
