//! The instruction Sequence.
//!
//! DRAM-Locker buffers incoming R/W instructions in a Sequence. When an
//! instruction targets a locked row it is *skipped* in place (the paper:
//! "no matter how many requests the attacker sends, they will be invalid
//! and the instructions will not be executed"). Unlock operations are
//! realized by *inserting* the three Row Copy µOps of a SWAP ahead of
//! the blocked instruction.

use std::collections::VecDeque;

use dlk_dram::RowId;

use crate::isa::Instruction;

/// One entry in the Sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SequenceEntry {
    /// A read/write instruction targeting a DRAM row.
    ReadWrite {
        /// Target row.
        row: RowId,
        /// `true` for writes.
        is_write: bool,
    },
    /// A DRAM-Locker µOp (row copy / control).
    Micro(Instruction),
}

/// The buffered instruction stream with skip accounting.
///
/// # Example
///
/// ```
/// use dlk_locker::{Sequence, SequenceEntry};
/// use dlk_dram::RowId;
///
/// let mut seq = Sequence::new();
/// seq.push_rw(RowId(4), false);
/// assert_eq!(seq.len(), 1);
/// let entry = seq.pop().unwrap();
/// assert!(matches!(entry, SequenceEntry::ReadWrite { .. }));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Sequence {
    entries: VecDeque<SequenceEntry>,
    skipped: u64,
    executed_rw: u64,
    executed_micro: u64,
}

impl Sequence {
    /// Creates an empty sequence.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of buffered entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Appends a read/write instruction.
    pub fn push_rw(&mut self, row: RowId, is_write: bool) {
        self.entries.push_back(SequenceEntry::ReadWrite { row, is_write });
    }

    /// Appends a µOp.
    pub fn push_micro(&mut self, instruction: Instruction) {
        self.entries.push_back(SequenceEntry::Micro(instruction));
    }

    /// Inserts a µOp *at the front* (ahead of blocked instructions) —
    /// how SWAP copies jump the queue to unlock a row.
    pub fn insert_micro_front(&mut self, instruction: Instruction) {
        self.entries.push_front(SequenceEntry::Micro(instruction));
    }

    /// Pops the next entry, counting it as executed.
    pub fn pop(&mut self) -> Option<SequenceEntry> {
        let entry = self.entries.pop_front()?;
        match entry {
            SequenceEntry::ReadWrite { .. } => self.executed_rw += 1,
            SequenceEntry::Micro(_) => self.executed_micro += 1,
        }
        Some(entry)
    }

    /// Pops the next entry but marks it skipped (locked-row deny).
    pub fn skip(&mut self) -> Option<SequenceEntry> {
        let entry = self.entries.pop_front()?;
        self.skipped += 1;
        Some(entry)
    }

    /// Drops every queued R/W touching `row`, marking them skipped —
    /// the bulk discard of an attacker's pending hammer burst.
    pub fn skip_all_for(&mut self, row: RowId) -> u64 {
        let before = self.entries.len();
        self.entries
            .retain(|entry| !matches!(entry, SequenceEntry::ReadWrite { row: r, .. } if *r == row));
        let dropped = (before - self.entries.len()) as u64;
        self.skipped += dropped;
        dropped
    }

    /// Instructions skipped so far.
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// R/W instructions executed so far.
    pub fn executed_rw(&self) -> u64 {
        self.executed_rw
    }

    /// µOps executed so far.
    pub fn executed_micro(&self) -> u64 {
        self.executed_micro
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut seq = Sequence::new();
        seq.push_rw(RowId(1), false);
        seq.push_rw(RowId(2), true);
        assert!(matches!(
            seq.pop(),
            Some(SequenceEntry::ReadWrite { row: RowId(1), is_write: false })
        ));
        assert!(matches!(
            seq.pop(),
            Some(SequenceEntry::ReadWrite { row: RowId(2), is_write: true })
        ));
        assert_eq!(seq.pop(), None);
        assert_eq!(seq.executed_rw(), 2);
    }

    #[test]
    fn micro_front_insertion_jumps_queue() {
        let mut seq = Sequence::new();
        seq.push_rw(RowId(1), false);
        seq.insert_micro_front(Instruction::Copy { dst: 0, src: 1 });
        assert!(matches!(seq.pop(), Some(SequenceEntry::Micro(_))));
        assert_eq!(seq.executed_micro(), 1);
    }

    #[test]
    fn skip_counts_separately() {
        let mut seq = Sequence::new();
        seq.push_rw(RowId(1), false);
        seq.push_rw(RowId(2), false);
        seq.skip();
        seq.pop();
        assert_eq!(seq.skipped(), 1);
        assert_eq!(seq.executed_rw(), 1);
    }

    #[test]
    fn skip_all_for_drops_matching_rows() {
        let mut seq = Sequence::new();
        for _ in 0..5 {
            seq.push_rw(RowId(9), false);
        }
        seq.push_rw(RowId(1), false);
        let dropped = seq.skip_all_for(RowId(9));
        assert_eq!(dropped, 5);
        assert_eq!(seq.len(), 1);
        assert_eq!(seq.skipped(), 5);
    }
}
