//! The DRAM-Locker 16-bit instruction set (Fig. 5 of the paper).
//!
//! Two instruction classes, distinguished by the 2-bit opcode:
//!
//! | OP   | Mnemonic | Encoding                        |
//! |------|----------|---------------------------------|
//! | `01` | `AAP`    | `01 ddddddd sssssss` — row copy from µReg `s` to µReg `d` |
//! | `10` | `bnez`   | `10 rrrrrrr ttttttt` — branch to µOp `t` if µReg `r` ≠ 0  |
//! | `11` | `done`   | `11 00000000000000` — terminate the micro-program         |
//!
//! µRegs are 7-bit names resolved through a [`RegFile`] that binds them
//! to DRAM row addresses (for `AAP`) or scalar counters (for `bnez`).
//! The [`MicroExecutor`] runs a [`MicroProgram`] against a
//! [`DramDevice`], issuing one RowClone AAP per copy instruction — this
//! is exactly how DRAM-Locker's SWAP reaches the DRAM.

use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

use dlk_dram::{DramDevice, DramError, RowAddr};

/// Number of addressable µRegs (7-bit names).
pub const NUM_UREGS: usize = 128;

/// A decoded DRAM-Locker instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Instruction {
    /// RowClone copy: row bound to µReg `src` copied over µReg `dst`.
    Copy {
        /// Destination µReg (bound to a row).
        dst: u8,
        /// Source µReg (bound to a row).
        src: u8,
    },
    /// Branch to µOp index `target` if the counter µReg `reg` is not
    /// zero; decrements the counter on a taken branch.
    Bnez {
        /// Counter µReg.
        reg: u8,
        /// Branch target (µOp index).
        target: u8,
    },
    /// Terminate the micro-program.
    Done,
}

/// Instruction class of one opcode block — the discriminant column of
/// the dense decode table, also used as the pre-decoded dispatch tag
/// of a [`CompiledProgram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpClass {
    /// Reserved opcode `00`: always a fault.
    Reserved = 0,
    /// `01` — RowClone copy.
    Copy = 1,
    /// `10` — branch if counter non-zero.
    Bnez = 2,
    /// `11` — terminate.
    Done = 3,
}

/// One row of the dense decode table, indexed by the top-2 opcode
/// bits. Flag columns describe operand validity instead of per-opcode
/// code paths: `zero_mask` are the word bits that must be clear for a
/// canonical encoding (`done` takes no operands), `valid` is false
/// only for the reserved block.
struct DecodeEntry {
    class: OpClass,
    valid: bool,
    zero_mask: u16,
}

/// The 4-entry decode table (one aligned block per 2-bit opcode, after
/// plonky2's power-of-two opcode blocks). `Instruction::decode`, the
/// bulk disassembler and [`CompiledProgram::from_words`] all key into
/// this table; the legacy match decoder survives as
/// [`Instruction::decode_reference`], and an exhaustive-u16 test pins
/// the two word-for-word.
const DECODE_TABLE: [DecodeEntry; 4] = [
    DecodeEntry { class: OpClass::Reserved, valid: false, zero_mask: 0 },
    DecodeEntry { class: OpClass::Copy, valid: true, zero_mask: 0 },
    DecodeEntry { class: OpClass::Bnez, valid: true, zero_mask: 0 },
    DecodeEntry { class: OpClass::Done, valid: true, zero_mask: 0x3FFF },
];

impl Instruction {
    const OP_COPY: u16 = 0b01;
    const OP_BNEZ: u16 = 0b10;
    const OP_DONE: u16 = 0b11;

    /// Encodes the instruction into its 16-bit representation.
    pub fn encode(&self) -> u16 {
        match self {
            Instruction::Copy { dst, src } => {
                (Self::OP_COPY << 14) | ((*dst as u16 & 0x7F) << 7) | (*src as u16 & 0x7F)
            }
            Instruction::Bnez { reg, target } => {
                (Self::OP_BNEZ << 14) | ((*reg as u16 & 0x7F) << 7) | (*target as u16 & 0x7F)
            }
            Instruction::Done => Self::OP_DONE << 14,
        }
    }

    /// The table's `valid` column packed into one bit per opcode
    /// block, so the bulk validity scan needs no table load.
    const VALID_BITS: u16 = {
        let mut bits = 0u16;
        let mut op = 0;
        while op < DECODE_TABLE.len() {
            if DECODE_TABLE[op].valid {
                bits |= 1 << op;
            }
            op += 1;
        }
        bits
    };

    /// The one non-trivial `zero_mask` column (`done`'s operand bits),
    /// lifted out of the table at compile time.
    const DONE_ZERO_MASK: u16 = DECODE_TABLE[Instruction::OP_DONE as usize].zero_mask;

    /// Whether `word` is a canonical encoding — the branch-free
    /// validity test of the decode table. Uses the compile-time
    /// projections of the flag columns ([`Self::VALID_BITS`],
    /// [`Self::DONE_ZERO_MASK`]) so the check is pure arithmetic and
    /// the bulk scan in [`CompiledProgram::from_words`] vectorizes;
    /// the exhaustive-u16 test pins it against the table decoder.
    #[inline]
    pub fn word_is_canonical(word: u16) -> bool {
        let op = word >> 14;
        ((Self::VALID_BITS >> op) & 1 == 1)
            & ((op != Self::OP_DONE) | (word & Self::DONE_ZERO_MASK == 0))
    }

    /// Decodes a 16-bit word through the dense decode table.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::BadOpcode`] for the reserved opcode `00` and
    /// [`IsaError::BadEncoding`] for malformed `done` words.
    #[inline]
    pub fn decode(word: u16) -> Result<Self, IsaError> {
        let entry = &DECODE_TABLE[(word >> 14) as usize];
        if !(entry.valid & (word & entry.zero_mask == 0)) {
            return Err(Self::classify_fault(word));
        }
        let hi = ((word >> 7) & 0x7F) as u8;
        let lo = (word & 0x7F) as u8;
        Ok(match entry.class {
            OpClass::Copy => Instruction::Copy { dst: hi, src: lo },
            OpClass::Bnez => Instruction::Bnez { reg: hi, target: lo },
            // `zero_mask` already proved the operand bits clear.
            _ => Instruction::Done,
        })
    }

    /// The exact fault a non-canonical word raises (cold path).
    #[cold]
    fn classify_fault(word: u16) -> IsaError {
        if DECODE_TABLE[(word >> 14) as usize].valid {
            IsaError::BadEncoding(word)
        } else {
            IsaError::BadOpcode(word)
        }
    }

    /// The pre-refactor match-based decoder, kept verbatim as the
    /// oracle for the table-driven [`Instruction::decode`] (tests pin
    /// the two word-for-word over all 65536 words; `benches/hot_path.rs`
    /// reports the throughput ratio).
    #[doc(hidden)]
    pub fn decode_reference(word: u16) -> Result<Self, IsaError> {
        let op = word >> 14;
        let hi = ((word >> 7) & 0x7F) as u8;
        let lo = (word & 0x7F) as u8;
        match op {
            Self::OP_COPY => Ok(Instruction::Copy { dst: hi, src: lo }),
            Self::OP_BNEZ => Ok(Instruction::Bnez { reg: hi, target: lo }),
            Self::OP_DONE => {
                if hi == 0 && lo == 0 {
                    Ok(Instruction::Done)
                } else {
                    Err(IsaError::BadEncoding(word))
                }
            }
            _ => Err(IsaError::BadOpcode(word)),
        }
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instruction::Copy { dst, src } => write!(f, "AAP r{dst}, r{src}"),
            Instruction::Bnez { reg, target } => write!(f, "bnez r{reg}, {target}"),
            Instruction::Done => f.write_str("done"),
        }
    }
}

/// ISA decoding/execution errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IsaError {
    /// Reserved opcode `00`.
    BadOpcode(u16),
    /// Non-canonical encoding (e.g. `done` with operand bits set).
    BadEncoding(u16),
    /// A copy referenced a µReg with no bound row.
    UnboundReg(u8),
    /// The program ran past its end without `done`.
    MissingDone,
    /// Execution exceeded the step budget (runaway loop).
    StepLimit(usize),
    /// DRAM rejected an AAP.
    Dram(DramError),
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::BadOpcode(word) => write!(f, "reserved opcode in word {word:#06x}"),
            IsaError::BadEncoding(word) => write!(f, "malformed encoding {word:#06x}"),
            IsaError::UnboundReg(reg) => write!(f, "µreg r{reg} has no bound row"),
            IsaError::MissingDone => f.write_str("program ended without done"),
            IsaError::StepLimit(n) => write!(f, "step limit {n} exceeded"),
            IsaError::Dram(err) => write!(f, "dram error: {err}"),
        }
    }
}

impl Error for IsaError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            IsaError::Dram(err) => Some(err),
            _ => None,
        }
    }
}

impl From<DramError> for IsaError {
    fn from(err: DramError) -> Self {
        IsaError::Dram(err)
    }
}

/// The µReg file: binds register names to row addresses and counters.
#[derive(Debug, Clone)]
pub struct RegFile {
    rows: [Option<RowAddr>; NUM_UREGS],
    counters: [u64; NUM_UREGS],
}

impl Default for RegFile {
    fn default() -> Self {
        Self::new()
    }
}

impl RegFile {
    /// Creates an empty register file.
    pub fn new() -> Self {
        Self { rows: [None; NUM_UREGS], counters: [0; NUM_UREGS] }
    }

    /// Binds µReg `reg` to a DRAM row.
    pub fn bind_row(&mut self, reg: u8, row: RowAddr) {
        self.rows[reg as usize % NUM_UREGS] = Some(row);
    }

    /// The row bound to `reg`, if any.
    pub fn row(&self, reg: u8) -> Option<RowAddr> {
        self.rows[reg as usize % NUM_UREGS]
    }

    /// Sets counter µReg `reg`.
    pub fn set_counter(&mut self, reg: u8, value: u64) {
        self.counters[reg as usize % NUM_UREGS] = value;
    }

    /// Reads counter µReg `reg`.
    pub fn counter(&self, reg: u8) -> u64 {
        self.counters[reg as usize % NUM_UREGS]
    }
}

/// A sequence of instructions.
///
/// # Example
///
/// ```
/// use dlk_locker::{Instruction, MicroProgram};
///
/// let prog = MicroProgram::swap(0, 1, 2);
/// assert_eq!(prog.len(), 4); // three copies + done
/// let words = prog.assemble();
/// let back = MicroProgram::disassemble(&words).unwrap();
/// assert_eq!(back, prog);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MicroProgram {
    instructions: Vec<Instruction>,
}

impl MicroProgram {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// The canonical SWAP program of the paper (Fig. 4(b)): with µRegs
    /// `a` (locked row), `b` (unlocked row) and `buf` (buffer row):
    ///
    /// 1. `AAP buf, a` — locked row into the buffer row;
    /// 2. `AAP a, b` — unlocked row into the locked row;
    /// 3. `AAP b, buf` — buffer row into the unlocked row;
    /// 4. `done`.
    pub fn swap(a: u8, b: u8, buf: u8) -> Self {
        Self {
            instructions: vec![
                Instruction::Copy { dst: buf, src: a },
                Instruction::Copy { dst: a, src: b },
                Instruction::Copy { dst: b, src: buf },
                Instruction::Done,
            ],
        }
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Appends an instruction.
    pub fn push(&mut self, instruction: Instruction) {
        self.instructions.push(instruction);
    }

    /// The instructions.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Assembles to 16-bit words.
    pub fn assemble(&self) -> Vec<u16> {
        self.instructions.iter().map(Instruction::encode).collect()
    }

    /// Disassembles from 16-bit words.
    ///
    /// # Errors
    ///
    /// Returns the first decoding error.
    pub fn disassemble(words: &[u16]) -> Result<Self, IsaError> {
        let instructions =
            words.iter().map(|&w| Instruction::decode(w)).collect::<Result<_, _>>()?;
        Ok(Self { instructions })
    }

    /// Pre-decodes the program into its dense executable form.
    pub fn compile(&self) -> CompiledProgram {
        CompiledProgram { ops: self.instructions.iter().map(PackedOp::from_instruction).collect() }
    }
}

/// One pre-decoded µOp in dense table form: the 2-bit opcode as the
/// dispatch tag plus the two 7-bit operand fields, regardless of
/// class. Decoding a word into this form is branch-free; the explicit
/// padding byte keeps the struct 4 bytes wide so the bulk decoder's
/// stores stay lane-aligned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(C)]
pub struct PackedOp {
    /// The opcode bits (1 = copy, 2 = bnez, 3 = done).
    op: u8,
    /// High operand field (copy `dst` / bnez `reg`).
    a: u8,
    /// Low operand field (copy `src` / bnez `target`).
    b: u8,
    /// Always zero.
    pad: u8,
}

impl PackedOp {
    #[inline]
    fn from_word(word: u16) -> Self {
        Self {
            op: (word >> 14) as u8,
            a: ((word >> 7) & 0x7F) as u8,
            b: (word & 0x7F) as u8,
            pad: 0,
        }
    }

    fn from_instruction(instruction: &Instruction) -> Self {
        Self::from_word(instruction.encode())
    }

    /// The decoded instruction this op packs.
    pub fn instruction(&self) -> Instruction {
        match self.op {
            1 => Instruction::Copy { dst: self.a, src: self.b },
            2 => Instruction::Bnez { reg: self.a, target: self.b },
            _ => Instruction::Done,
        }
    }
}

/// A pre-decoded micro-program: the dense form [`MicroExecutor`] runs
/// without re-decoding. Produced by [`MicroProgram::compile`] or
/// directly from a word stream by [`CompiledProgram::from_words`],
/// whose bulk decoder validates every word with the decode table's
/// flag columns first (a branch-free scan) and then packs operands
/// unchecked.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CompiledProgram {
    ops: Vec<PackedOp>,
}

impl CompiledProgram {
    /// Bulk-decodes a word stream.
    ///
    /// # Errors
    ///
    /// Returns the first decoding error, identical to the error
    /// [`MicroProgram::disassemble`] reports for the same words.
    pub fn from_words(words: &[u16]) -> Result<Self, IsaError> {
        // Accumulate validity over the whole stream instead of
        // early-exiting: the reduction has no data-dependent branch,
        // so it vectorizes; the faulting word is located again only on
        // the cold error path. Kept as a separate pass from the pack
        // loop — fusing them carries the flag through the collect and
        // de-vectorizes both.
        let all_canonical =
            words.iter().fold(true, |ok, &w| ok & Instruction::word_is_canonical(w));
        if !all_canonical {
            // Relocating the fault can't fail (the reduction saw one),
            // but stay infallible anyway: a never-taken fallthrough to
            // a generic fault beats an expect() on the service path.
            let bad = words
                .iter()
                .copied()
                .find(|&w| !Instruction::word_is_canonical(w))
                .unwrap_or(words.first().copied().unwrap_or(0));
            return Err(Instruction::classify_fault(bad));
        }
        Ok(Self { ops: words.iter().map(|&w| PackedOp::from_word(w)).collect() })
    }

    /// Number of µOps.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The packed µOps.
    pub fn ops(&self) -> &[PackedOp] {
        &self.ops
    }

    /// Reconstructs the instruction-level program.
    pub fn decompile(&self) -> MicroProgram {
        MicroProgram { instructions: self.ops.iter().map(PackedOp::instruction).collect() }
    }
}

/// A cache of pre-decoded programs keyed by their word stream, so
/// replaying the same micro-program never re-decodes. Backing store of
/// [`MicroExecutor::run_words`].
#[derive(Debug, Clone, Default)]
pub struct ProgramCache {
    programs: std::collections::HashMap<Vec<u16>, CompiledProgram>,
    hits: u64,
    misses: u64,
    /// `(hits, misses)` already pushed to a registry by
    /// [`ProgramCache::export_obs`], so repeated exports add deltas
    /// only.
    exported: std::cell::Cell<(u64, u64)>,
}

impl ProgramCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The compiled program for `words`, bulk-decoding at most once
    /// per distinct word stream.
    ///
    /// # Errors
    ///
    /// Returns the first decoding error (never cached — a faulting
    /// stream faults again).
    pub fn get_or_compile(&mut self, words: &[u16]) -> Result<&CompiledProgram, IsaError> {
        if !self.programs.contains_key(words) {
            self.misses += 1;
            let compiled = CompiledProgram::from_words(words)?;
            self.programs.insert(words.to_vec(), compiled);
        } else {
            self.hits += 1;
        }
        Ok(&self.programs[words])
    }

    /// Pushes the hit/miss counters into `registry` as
    /// `<prefix>.hits` / `<prefix>.misses` — the exposition path for
    /// counters that are otherwise private to the executor. Only the
    /// delta since the previous export is added, so repeated exports
    /// never double-count.
    pub fn export_obs(&self, registry: &dlk_obs::Registry, prefix: &str) {
        let (prev_hits, prev_misses) = self.exported.get();
        registry.counter(&format!("{prefix}.hits")).add(self.hits.saturating_sub(prev_hits));
        registry.counter(&format!("{prefix}.misses")).add(self.misses.saturating_sub(prev_misses));
        self.exported.set((self.hits, self.misses));
    }

    /// Replays served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Word streams decoded.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of cached programs.
    pub fn len(&self) -> usize {
        self.programs.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.programs.is_empty()
    }
}

/// Executes micro-programs against a DRAM device.
#[derive(Debug, Clone)]
pub struct MicroExecutor {
    /// Maximum µOps executed before aborting (runaway-loop guard).
    pub step_limit: usize,
    /// Pre-decoded programs keyed by word stream, so
    /// [`MicroExecutor::run_words`] replay never re-decodes.
    cache: ProgramCache,
}

impl Default for MicroExecutor {
    fn default() -> Self {
        Self { step_limit: 4096, cache: ProgramCache::new() }
    }
}

/// Result of executing a micro-program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecReport {
    /// µOps executed (including the final `done`).
    pub steps: usize,
    /// AAP copies issued to DRAM.
    pub copies: usize,
    /// Device cycles consumed.
    pub cycles: u64,
}

impl MicroExecutor {
    /// Creates an executor with the default step limit.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `program` to its `done`, issuing AAPs to `dram`.
    ///
    /// # Errors
    ///
    /// Returns an error for unbound registers, missing `done`, step
    /// limit overruns or DRAM command failures.
    pub fn run(
        &self,
        program: &MicroProgram,
        regs: &mut RegFile,
        dram: &mut DramDevice,
    ) -> Result<ExecReport, IsaError> {
        self.run_compiled(&program.compile(), regs, dram)
    }

    /// Runs a pre-decoded program — the no-re-decode replay path.
    /// Behaviour (reports and errors) is identical to
    /// [`MicroExecutor::run`] on the equivalent [`MicroProgram`].
    ///
    /// # Errors
    ///
    /// Returns an error for unbound registers, missing `done`, step
    /// limit overruns or DRAM command failures.
    pub fn run_compiled(
        &self,
        program: &CompiledProgram,
        regs: &mut RegFile,
        dram: &mut DramDevice,
    ) -> Result<ExecReport, IsaError> {
        Self::exec(self.step_limit, program, regs, dram)
    }

    fn exec(
        step_limit: usize,
        program: &CompiledProgram,
        regs: &mut RegFile,
        dram: &mut DramDevice,
    ) -> Result<ExecReport, IsaError> {
        let begin_cycles = dram.now();
        let mut pc = 0usize;
        let mut report = ExecReport::default();
        loop {
            if report.steps >= step_limit {
                return Err(IsaError::StepLimit(step_limit));
            }
            let Some(op) = program.ops().get(pc) else {
                return Err(IsaError::MissingDone);
            };
            report.steps += 1;
            match op.op {
                1 => {
                    let (dst, src) = (op.a, op.b);
                    let src_row = regs.row(src).ok_or(IsaError::UnboundReg(src))?;
                    let dst_row = regs.row(dst).ok_or(IsaError::UnboundReg(dst))?;
                    dram.row_clone(src_row, dst_row)?;
                    report.copies += 1;
                    pc += 1;
                }
                2 => {
                    let value = regs.counter(op.a);
                    if value != 0 {
                        regs.set_counter(op.a, value - 1);
                        pc = op.b as usize;
                    } else {
                        pc += 1;
                    }
                }
                _ => {
                    report.cycles = dram.now() - begin_cycles;
                    return Ok(report);
                }
            }
        }
    }

    /// Decodes-and-runs a word stream, serving repeat streams from the
    /// executor's [`ProgramCache`] so replay never re-decodes.
    ///
    /// # Errors
    ///
    /// Returns the first decoding error, or any execution error of
    /// [`MicroExecutor::run_compiled`].
    pub fn run_words(
        &mut self,
        words: &[u16],
        regs: &mut RegFile,
        dram: &mut DramDevice,
    ) -> Result<ExecReport, IsaError> {
        let Self { step_limit, cache } = self;
        let program = cache.get_or_compile(words)?;
        Self::exec(*step_limit, program, regs, dram)
    }

    /// The executor's program cache (hit/miss accounting).
    pub fn cache(&self) -> &ProgramCache {
        &self.cache
    }

    /// Surfaces the program cache's hit/miss counters in `registry`
    /// under `<prefix>.*` (see [`ProgramCache::export_obs`]).
    pub fn export_obs(&self, registry: &dlk_obs::Registry, prefix: &str) {
        self.cache.export_obs(registry, prefix);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlk_dram::DramConfig;

    #[test]
    fn program_cache_export_obs_adds_deltas_only() {
        let registry = dlk_obs::Registry::new();
        let mut cache = ProgramCache::new();
        let words = MicroProgram::swap(0, 1, 2).assemble();
        cache.get_or_compile(&words).unwrap(); // miss
        cache.get_or_compile(&words).unwrap(); // hit
        cache.export_obs(&registry, "locker.program_cache");
        assert_eq!(registry.counter("locker.program_cache.hits").get(), 1);
        assert_eq!(registry.counter("locker.program_cache.misses").get(), 1);
        cache.get_or_compile(&words).unwrap(); // another hit
        cache.export_obs(&registry, "locker.program_cache");
        assert_eq!(registry.counter("locker.program_cache.hits").get(), 2);
        assert_eq!(registry.counter("locker.program_cache.misses").get(), 1);
    }

    #[test]
    fn encode_decode_roundtrip_all_variants() {
        for instruction in [
            Instruction::Copy { dst: 3, src: 127 },
            Instruction::Bnez { reg: 1, target: 0 },
            Instruction::Done,
        ] {
            assert_eq!(Instruction::decode(instruction.encode()).unwrap(), instruction);
        }
    }

    #[test]
    fn reserved_opcode_rejected() {
        assert_eq!(Instruction::decode(0x0000), Err(IsaError::BadOpcode(0)));
    }

    #[test]
    fn malformed_done_rejected() {
        let word = (0b11 << 14) | 1;
        assert_eq!(Instruction::decode(word), Err(IsaError::BadEncoding(word)));
    }

    #[test]
    fn opcodes_match_fig5() {
        // OP=01 copy, OP=10 bnez, OP=11 done.
        assert_eq!(Instruction::Copy { dst: 0, src: 0 }.encode() >> 14, 0b01);
        assert_eq!(Instruction::Bnez { reg: 0, target: 0 }.encode() >> 14, 0b10);
        assert_eq!(Instruction::Done.encode() >> 14, 0b11);
    }

    #[test]
    fn swap_program_swaps_rows_on_dram() {
        let mut dram = DramDevice::new(DramConfig::tiny_for_tests());
        let a = RowAddr::new(0, 0, 1);
        let b = RowAddr::new(0, 0, 2);
        let buf = RowAddr::new(0, 0, 63);
        dram.write_row(a, &[0xAA; 64]).unwrap();
        dram.write_row(b, &[0xBB; 64]).unwrap();

        let mut regs = RegFile::new();
        regs.bind_row(0, a);
        regs.bind_row(1, b);
        regs.bind_row(2, buf);
        let report =
            MicroExecutor::new().run(&MicroProgram::swap(0, 1, 2), &mut regs, &mut dram).unwrap();
        assert_eq!(report.copies, 3);
        assert!(report.cycles > 0);
        assert_eq!(dram.read_row(a).unwrap(), vec![0xBB; 64]);
        assert_eq!(dram.read_row(b).unwrap(), vec![0xAA; 64]);
    }

    #[test]
    fn unbound_reg_detected() {
        let mut dram = DramDevice::new(DramConfig::tiny_for_tests());
        let mut regs = RegFile::new();
        let err = MicroExecutor::new()
            .run(&MicroProgram::swap(0, 1, 2), &mut regs, &mut dram)
            .unwrap_err();
        assert_eq!(err, IsaError::UnboundReg(0));
    }

    #[test]
    fn bnez_loops_and_decrements() {
        // Loop: copy a->b, bnez r3 back to 0, done. Counter 2 => 3 copies.
        let mut dram = DramDevice::new(DramConfig::tiny_for_tests());
        let mut regs = RegFile::new();
        regs.bind_row(0, RowAddr::new(0, 0, 1));
        regs.bind_row(1, RowAddr::new(0, 0, 2));
        regs.set_counter(3, 2);
        let mut prog = MicroProgram::new();
        prog.push(Instruction::Copy { dst: 1, src: 0 });
        prog.push(Instruction::Bnez { reg: 3, target: 0 });
        prog.push(Instruction::Done);
        let report = MicroExecutor::new().run(&prog, &mut regs, &mut dram).unwrap();
        assert_eq!(report.copies, 3);
        assert_eq!(regs.counter(3), 0);
    }

    #[test]
    fn missing_done_detected() {
        let mut dram = DramDevice::new(DramConfig::tiny_for_tests());
        let mut regs = RegFile::new();
        regs.bind_row(0, RowAddr::new(0, 0, 1));
        regs.bind_row(1, RowAddr::new(0, 0, 2));
        let mut prog = MicroProgram::new();
        prog.push(Instruction::Copy { dst: 1, src: 0 });
        let err = MicroExecutor::new().run(&prog, &mut regs, &mut dram).unwrap_err();
        assert_eq!(err, IsaError::MissingDone);
    }

    #[test]
    fn runaway_loop_hits_step_limit() {
        let mut dram = DramDevice::new(DramConfig::tiny_for_tests());
        let mut regs = RegFile::new();
        regs.set_counter(0, u64::MAX);
        let mut prog = MicroProgram::new();
        prog.push(Instruction::Bnez { reg: 0, target: 0 });
        prog.push(Instruction::Done);
        let executor = MicroExecutor { step_limit: 100, ..MicroExecutor::new() };
        assert_eq!(
            executor.run(&prog, &mut regs, &mut dram).unwrap_err(),
            IsaError::StepLimit(100)
        );
    }

    #[test]
    fn assembly_roundtrip() {
        let prog = MicroProgram::swap(5, 6, 7);
        let words = prog.assemble();
        assert_eq!(words.len(), 4);
        assert_eq!(MicroProgram::disassemble(&words).unwrap(), prog);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Instruction::Copy { dst: 1, src: 2 }.to_string(), "AAP r1, r2");
        assert_eq!(Instruction::Bnez { reg: 3, target: 0 }.to_string(), "bnez r3, 0");
        assert_eq!(Instruction::Done.to_string(), "done");
    }

    /// The dense decode table reproduces the legacy match decoder
    /// word-for-word over the entire 16-bit space, including the exact
    /// `BadOpcode`/`BadEncoding` faults.
    #[test]
    fn table_decoder_matches_reference_exhaustively() {
        for word in 0..=u16::MAX {
            let legacy = Instruction::decode_reference(word);
            assert_eq!(Instruction::decode(word), legacy, "word {word:#06x}");
            assert_eq!(Instruction::word_is_canonical(word), legacy.is_ok(), "word {word:#06x}");
            // The bulk decoder agrees on the word in isolation too.
            match CompiledProgram::from_words(&[word]) {
                Ok(compiled) => {
                    assert_eq!(compiled.ops()[0].instruction(), legacy.unwrap());
                }
                Err(err) => assert_eq!(Err(err), legacy),
            }
        }
    }

    /// Encode→decode round-trips over every expressible instruction.
    #[test]
    fn encode_decode_roundtrip_exhaustive() {
        let mut all = vec![Instruction::Done];
        for hi in 0..=0x7Fu8 {
            for lo in 0..=0x7Fu8 {
                all.push(Instruction::Copy { dst: hi, src: lo });
                all.push(Instruction::Bnez { reg: hi, target: lo });
            }
        }
        for instruction in all {
            let word = instruction.encode();
            assert_eq!(Instruction::decode(word), Ok(instruction));
            assert_eq!(Instruction::decode_reference(word), Ok(instruction));
            assert_eq!(PackedOp::from_word(word).instruction(), instruction);
        }
    }

    /// Bulk decode reports the first faulting word, exactly like the
    /// per-word disassembler.
    #[test]
    fn compiled_from_words_reports_first_fault() {
        let words = [Instruction::Done.encode(), 0x0000, (0b11 << 14) | 1];
        assert_eq!(CompiledProgram::from_words(&words), Err(IsaError::BadOpcode(0)));
        let words = [(0b11 << 14) | 1, 0x0000];
        assert_eq!(
            CompiledProgram::from_words(&words),
            Err(IsaError::BadEncoding((0b11 << 14) | 1))
        );
        assert_eq!(
            MicroProgram::disassemble(&words).unwrap_err(),
            IsaError::BadEncoding((0b11 << 14) | 1)
        );
    }

    /// compile→decompile is the identity, and `from_words` agrees with
    /// compiling the disassembled program.
    #[test]
    fn compile_roundtrip() {
        let prog = MicroProgram::swap(5, 6, 7);
        let compiled = prog.compile();
        assert_eq!(compiled.len(), prog.len());
        assert_eq!(compiled.decompile(), prog);
        assert_eq!(CompiledProgram::from_words(&prog.assemble()).unwrap(), compiled);
    }

    /// The pre-decoded path executes bit-identically to the
    /// instruction-level path: same DRAM state, report and errors.
    #[test]
    fn run_compiled_matches_run() {
        let config = DramConfig::tiny_for_tests();
        let build = || {
            let mut dram = DramDevice::new(config);
            let a = RowAddr::new(0, 0, 1);
            let b = RowAddr::new(0, 0, 2);
            dram.write_row(a, &[0xAA; 64]).unwrap();
            dram.write_row(b, &[0xBB; 64]).unwrap();
            let mut regs = RegFile::new();
            regs.bind_row(0, a);
            regs.bind_row(1, b);
            regs.bind_row(2, RowAddr::new(0, 0, 63));
            regs.set_counter(3, 2);
            (dram, regs)
        };
        let mut prog = MicroProgram::swap(0, 1, 2);
        let mut looped = MicroProgram::new();
        looped.push(Instruction::Copy { dst: 1, src: 0 });
        looped.push(Instruction::Bnez { reg: 3, target: 0 });
        looped.push(Instruction::Done);
        for program in [&mut prog, &mut looped] {
            let executor = MicroExecutor::new();
            let (mut dram_a, mut regs_a) = build();
            let (mut dram_b, mut regs_b) = build();
            let via_run = executor.run(program, &mut regs_a, &mut dram_a).unwrap();
            let via_compiled =
                executor.run_compiled(&program.compile(), &mut regs_b, &mut dram_b).unwrap();
            assert_eq!(via_run, via_compiled);
            assert_eq!(dram_a.stats(), dram_b.stats());
            for row in 1..4 {
                let addr = RowAddr::new(0, 0, row);
                assert_eq!(dram_a.read_row(addr).unwrap(), dram_b.read_row(addr).unwrap());
            }
        }
    }

    /// Replaying the same word stream decodes once and hits the cache
    /// afterwards.
    #[test]
    fn run_words_caches_decoded_programs() {
        let mut dram = DramDevice::new(DramConfig::tiny_for_tests());
        let mut regs = RegFile::new();
        regs.bind_row(0, RowAddr::new(0, 0, 1));
        regs.bind_row(1, RowAddr::new(0, 0, 2));
        regs.bind_row(2, RowAddr::new(0, 0, 63));
        let words = MicroProgram::swap(0, 1, 2).assemble();
        let mut executor = MicroExecutor::new();
        for _ in 0..5 {
            executor.run_words(&words, &mut regs, &mut dram).unwrap();
        }
        assert_eq!(executor.cache().misses(), 1, "decoded exactly once");
        assert_eq!(executor.cache().hits(), 4);
        assert_eq!(executor.cache().len(), 1);
        // A faulting stream is never cached.
        assert!(executor.run_words(&[0x0000], &mut regs, &mut dram).is_err());
        assert!(executor.run_words(&[0x0000], &mut regs, &mut dram).is_err());
        assert_eq!(executor.cache().len(), 1);
    }
}
