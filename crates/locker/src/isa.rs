//! The DRAM-Locker 16-bit instruction set (Fig. 5 of the paper).
//!
//! Two instruction classes, distinguished by the 2-bit opcode:
//!
//! | OP   | Mnemonic | Encoding                        |
//! |------|----------|---------------------------------|
//! | `01` | `AAP`    | `01 ddddddd sssssss` — row copy from µReg `s` to µReg `d` |
//! | `10` | `bnez`   | `10 rrrrrrr ttttttt` — branch to µOp `t` if µReg `r` ≠ 0  |
//! | `11` | `done`   | `11 00000000000000` — terminate the micro-program         |
//!
//! µRegs are 7-bit names resolved through a [`RegFile`] that binds them
//! to DRAM row addresses (for `AAP`) or scalar counters (for `bnez`).
//! The [`MicroExecutor`] runs a [`MicroProgram`] against a
//! [`DramDevice`], issuing one RowClone AAP per copy instruction — this
//! is exactly how DRAM-Locker's SWAP reaches the DRAM.

use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

use dlk_dram::{DramDevice, DramError, RowAddr};

/// Number of addressable µRegs (7-bit names).
pub const NUM_UREGS: usize = 128;

/// A decoded DRAM-Locker instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Instruction {
    /// RowClone copy: row bound to µReg `src` copied over µReg `dst`.
    Copy {
        /// Destination µReg (bound to a row).
        dst: u8,
        /// Source µReg (bound to a row).
        src: u8,
    },
    /// Branch to µOp index `target` if the counter µReg `reg` is not
    /// zero; decrements the counter on a taken branch.
    Bnez {
        /// Counter µReg.
        reg: u8,
        /// Branch target (µOp index).
        target: u8,
    },
    /// Terminate the micro-program.
    Done,
}

impl Instruction {
    const OP_COPY: u16 = 0b01;
    const OP_BNEZ: u16 = 0b10;
    const OP_DONE: u16 = 0b11;

    /// Encodes the instruction into its 16-bit representation.
    pub fn encode(&self) -> u16 {
        match self {
            Instruction::Copy { dst, src } => {
                (Self::OP_COPY << 14) | ((*dst as u16 & 0x7F) << 7) | (*src as u16 & 0x7F)
            }
            Instruction::Bnez { reg, target } => {
                (Self::OP_BNEZ << 14) | ((*reg as u16 & 0x7F) << 7) | (*target as u16 & 0x7F)
            }
            Instruction::Done => Self::OP_DONE << 14,
        }
    }

    /// Decodes a 16-bit word.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::BadOpcode`] for the reserved opcode `00` and
    /// [`IsaError::BadEncoding`] for malformed `done` words.
    pub fn decode(word: u16) -> Result<Self, IsaError> {
        let op = word >> 14;
        let hi = ((word >> 7) & 0x7F) as u8;
        let lo = (word & 0x7F) as u8;
        match op {
            Self::OP_COPY => Ok(Instruction::Copy { dst: hi, src: lo }),
            Self::OP_BNEZ => Ok(Instruction::Bnez { reg: hi, target: lo }),
            Self::OP_DONE => {
                if hi == 0 && lo == 0 {
                    Ok(Instruction::Done)
                } else {
                    Err(IsaError::BadEncoding(word))
                }
            }
            _ => Err(IsaError::BadOpcode(word)),
        }
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instruction::Copy { dst, src } => write!(f, "AAP r{dst}, r{src}"),
            Instruction::Bnez { reg, target } => write!(f, "bnez r{reg}, {target}"),
            Instruction::Done => f.write_str("done"),
        }
    }
}

/// ISA decoding/execution errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IsaError {
    /// Reserved opcode `00`.
    BadOpcode(u16),
    /// Non-canonical encoding (e.g. `done` with operand bits set).
    BadEncoding(u16),
    /// A copy referenced a µReg with no bound row.
    UnboundReg(u8),
    /// The program ran past its end without `done`.
    MissingDone,
    /// Execution exceeded the step budget (runaway loop).
    StepLimit(usize),
    /// DRAM rejected an AAP.
    Dram(DramError),
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::BadOpcode(word) => write!(f, "reserved opcode in word {word:#06x}"),
            IsaError::BadEncoding(word) => write!(f, "malformed encoding {word:#06x}"),
            IsaError::UnboundReg(reg) => write!(f, "µreg r{reg} has no bound row"),
            IsaError::MissingDone => f.write_str("program ended without done"),
            IsaError::StepLimit(n) => write!(f, "step limit {n} exceeded"),
            IsaError::Dram(err) => write!(f, "dram error: {err}"),
        }
    }
}

impl Error for IsaError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            IsaError::Dram(err) => Some(err),
            _ => None,
        }
    }
}

impl From<DramError> for IsaError {
    fn from(err: DramError) -> Self {
        IsaError::Dram(err)
    }
}

/// The µReg file: binds register names to row addresses and counters.
#[derive(Debug, Clone)]
pub struct RegFile {
    rows: [Option<RowAddr>; NUM_UREGS],
    counters: [u64; NUM_UREGS],
}

impl Default for RegFile {
    fn default() -> Self {
        Self::new()
    }
}

impl RegFile {
    /// Creates an empty register file.
    pub fn new() -> Self {
        Self { rows: [None; NUM_UREGS], counters: [0; NUM_UREGS] }
    }

    /// Binds µReg `reg` to a DRAM row.
    pub fn bind_row(&mut self, reg: u8, row: RowAddr) {
        self.rows[reg as usize % NUM_UREGS] = Some(row);
    }

    /// The row bound to `reg`, if any.
    pub fn row(&self, reg: u8) -> Option<RowAddr> {
        self.rows[reg as usize % NUM_UREGS]
    }

    /// Sets counter µReg `reg`.
    pub fn set_counter(&mut self, reg: u8, value: u64) {
        self.counters[reg as usize % NUM_UREGS] = value;
    }

    /// Reads counter µReg `reg`.
    pub fn counter(&self, reg: u8) -> u64 {
        self.counters[reg as usize % NUM_UREGS]
    }
}

/// A sequence of instructions.
///
/// # Example
///
/// ```
/// use dlk_locker::{Instruction, MicroProgram};
///
/// let prog = MicroProgram::swap(0, 1, 2);
/// assert_eq!(prog.len(), 4); // three copies + done
/// let words = prog.assemble();
/// let back = MicroProgram::disassemble(&words).unwrap();
/// assert_eq!(back, prog);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MicroProgram {
    instructions: Vec<Instruction>,
}

impl MicroProgram {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// The canonical SWAP program of the paper (Fig. 4(b)): with µRegs
    /// `a` (locked row), `b` (unlocked row) and `buf` (buffer row):
    ///
    /// 1. `AAP buf, a` — locked row into the buffer row;
    /// 2. `AAP a, b` — unlocked row into the locked row;
    /// 3. `AAP b, buf` — buffer row into the unlocked row;
    /// 4. `done`.
    pub fn swap(a: u8, b: u8, buf: u8) -> Self {
        Self {
            instructions: vec![
                Instruction::Copy { dst: buf, src: a },
                Instruction::Copy { dst: a, src: b },
                Instruction::Copy { dst: b, src: buf },
                Instruction::Done,
            ],
        }
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Appends an instruction.
    pub fn push(&mut self, instruction: Instruction) {
        self.instructions.push(instruction);
    }

    /// The instructions.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Assembles to 16-bit words.
    pub fn assemble(&self) -> Vec<u16> {
        self.instructions.iter().map(Instruction::encode).collect()
    }

    /// Disassembles from 16-bit words.
    ///
    /// # Errors
    ///
    /// Returns the first decoding error.
    pub fn disassemble(words: &[u16]) -> Result<Self, IsaError> {
        let instructions =
            words.iter().map(|&w| Instruction::decode(w)).collect::<Result<_, _>>()?;
        Ok(Self { instructions })
    }
}

/// Executes micro-programs against a DRAM device.
#[derive(Debug, Clone)]
pub struct MicroExecutor {
    /// Maximum µOps executed before aborting (runaway-loop guard).
    pub step_limit: usize,
}

impl Default for MicroExecutor {
    fn default() -> Self {
        Self { step_limit: 4096 }
    }
}

/// Result of executing a micro-program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecReport {
    /// µOps executed (including the final `done`).
    pub steps: usize,
    /// AAP copies issued to DRAM.
    pub copies: usize,
    /// Device cycles consumed.
    pub cycles: u64,
}

impl MicroExecutor {
    /// Creates an executor with the default step limit.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `program` to its `done`, issuing AAPs to `dram`.
    ///
    /// # Errors
    ///
    /// Returns an error for unbound registers, missing `done`, step
    /// limit overruns or DRAM command failures.
    pub fn run(
        &self,
        program: &MicroProgram,
        regs: &mut RegFile,
        dram: &mut DramDevice,
    ) -> Result<ExecReport, IsaError> {
        let begin_cycles = dram.now();
        let mut pc = 0usize;
        let mut report = ExecReport::default();
        loop {
            if report.steps >= self.step_limit {
                return Err(IsaError::StepLimit(self.step_limit));
            }
            let Some(instruction) = program.instructions().get(pc) else {
                return Err(IsaError::MissingDone);
            };
            report.steps += 1;
            match *instruction {
                Instruction::Copy { dst, src } => {
                    let src_row = regs.row(src).ok_or(IsaError::UnboundReg(src))?;
                    let dst_row = regs.row(dst).ok_or(IsaError::UnboundReg(dst))?;
                    dram.row_clone(src_row, dst_row)?;
                    report.copies += 1;
                    pc += 1;
                }
                Instruction::Bnez { reg, target } => {
                    let value = regs.counter(reg);
                    if value != 0 {
                        regs.set_counter(reg, value - 1);
                        pc = target as usize;
                    } else {
                        pc += 1;
                    }
                }
                Instruction::Done => {
                    report.cycles = dram.now() - begin_cycles;
                    return Ok(report);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlk_dram::DramConfig;

    #[test]
    fn encode_decode_roundtrip_all_variants() {
        for instruction in [
            Instruction::Copy { dst: 3, src: 127 },
            Instruction::Bnez { reg: 1, target: 0 },
            Instruction::Done,
        ] {
            assert_eq!(Instruction::decode(instruction.encode()).unwrap(), instruction);
        }
    }

    #[test]
    fn reserved_opcode_rejected() {
        assert_eq!(Instruction::decode(0x0000), Err(IsaError::BadOpcode(0)));
    }

    #[test]
    fn malformed_done_rejected() {
        let word = (0b11 << 14) | 1;
        assert_eq!(Instruction::decode(word), Err(IsaError::BadEncoding(word)));
    }

    #[test]
    fn opcodes_match_fig5() {
        // OP=01 copy, OP=10 bnez, OP=11 done.
        assert_eq!(Instruction::Copy { dst: 0, src: 0 }.encode() >> 14, 0b01);
        assert_eq!(Instruction::Bnez { reg: 0, target: 0 }.encode() >> 14, 0b10);
        assert_eq!(Instruction::Done.encode() >> 14, 0b11);
    }

    #[test]
    fn swap_program_swaps_rows_on_dram() {
        let mut dram = DramDevice::new(DramConfig::tiny_for_tests());
        let a = RowAddr::new(0, 0, 1);
        let b = RowAddr::new(0, 0, 2);
        let buf = RowAddr::new(0, 0, 63);
        dram.write_row(a, &[0xAA; 64]).unwrap();
        dram.write_row(b, &[0xBB; 64]).unwrap();

        let mut regs = RegFile::new();
        regs.bind_row(0, a);
        regs.bind_row(1, b);
        regs.bind_row(2, buf);
        let report =
            MicroExecutor::new().run(&MicroProgram::swap(0, 1, 2), &mut regs, &mut dram).unwrap();
        assert_eq!(report.copies, 3);
        assert!(report.cycles > 0);
        assert_eq!(dram.read_row(a).unwrap(), vec![0xBB; 64]);
        assert_eq!(dram.read_row(b).unwrap(), vec![0xAA; 64]);
    }

    #[test]
    fn unbound_reg_detected() {
        let mut dram = DramDevice::new(DramConfig::tiny_for_tests());
        let mut regs = RegFile::new();
        let err = MicroExecutor::new()
            .run(&MicroProgram::swap(0, 1, 2), &mut regs, &mut dram)
            .unwrap_err();
        assert_eq!(err, IsaError::UnboundReg(0));
    }

    #[test]
    fn bnez_loops_and_decrements() {
        // Loop: copy a->b, bnez r3 back to 0, done. Counter 2 => 3 copies.
        let mut dram = DramDevice::new(DramConfig::tiny_for_tests());
        let mut regs = RegFile::new();
        regs.bind_row(0, RowAddr::new(0, 0, 1));
        regs.bind_row(1, RowAddr::new(0, 0, 2));
        regs.set_counter(3, 2);
        let mut prog = MicroProgram::new();
        prog.push(Instruction::Copy { dst: 1, src: 0 });
        prog.push(Instruction::Bnez { reg: 3, target: 0 });
        prog.push(Instruction::Done);
        let report = MicroExecutor::new().run(&prog, &mut regs, &mut dram).unwrap();
        assert_eq!(report.copies, 3);
        assert_eq!(regs.counter(3), 0);
    }

    #[test]
    fn missing_done_detected() {
        let mut dram = DramDevice::new(DramConfig::tiny_for_tests());
        let mut regs = RegFile::new();
        regs.bind_row(0, RowAddr::new(0, 0, 1));
        regs.bind_row(1, RowAddr::new(0, 0, 2));
        let mut prog = MicroProgram::new();
        prog.push(Instruction::Copy { dst: 1, src: 0 });
        let err = MicroExecutor::new().run(&prog, &mut regs, &mut dram).unwrap_err();
        assert_eq!(err, IsaError::MissingDone);
    }

    #[test]
    fn runaway_loop_hits_step_limit() {
        let mut dram = DramDevice::new(DramConfig::tiny_for_tests());
        let mut regs = RegFile::new();
        regs.set_counter(0, u64::MAX);
        let mut prog = MicroProgram::new();
        prog.push(Instruction::Bnez { reg: 0, target: 0 });
        prog.push(Instruction::Done);
        let executor = MicroExecutor { step_limit: 100 };
        assert_eq!(
            executor.run(&prog, &mut regs, &mut dram).unwrap_err(),
            IsaError::StepLimit(100)
        );
    }

    #[test]
    fn assembly_roundtrip() {
        let prog = MicroProgram::swap(5, 6, 7);
        let words = prog.assemble();
        assert_eq!(words.len(), 4);
        assert_eq!(MicroProgram::disassemble(&words).unwrap(), prog);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Instruction::Copy { dst: 1, src: 2 }.to_string(), "AAP r1, r2");
        assert_eq!(Instruction::Bnez { reg: 3, target: 0 }.to_string(), "bnez r3, 0");
        assert_eq!(Instruction::Done.to_string(), "done");
    }
}
