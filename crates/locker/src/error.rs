//! Error type for DRAM-Locker operations.

use std::error::Error;
use std::fmt;

use dlk_dram::{DramError, RowAddr};

/// Errors returned by DRAM-Locker operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockerError {
    /// The lock-table's SRAM capacity is exhausted.
    TableFull {
        /// Configured capacity in entries.
        capacity: usize,
    },
    /// No free row is available in the subarray for a SWAP.
    NoFreeRow {
        /// The subarray that ran out of free rows (bank, subarray).
        bank: u16,
        /// Subarray index.
        subarray: u16,
    },
    /// The row is already locked.
    AlreadyLocked(RowAddr),
    /// The underlying DRAM device rejected a command.
    Dram(DramError),
    /// A physical range did not map onto DRAM rows.
    BadRange {
        /// Range start (inclusive).
        start: u64,
        /// Range end (exclusive).
        end: u64,
    },
}

impl fmt::Display for LockerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockerError::TableFull { capacity } => {
                write!(f, "lock-table full ({capacity} entries)")
            }
            LockerError::NoFreeRow { bank, subarray } => {
                write!(f, "no free row available in bank {bank} subarray {subarray}")
            }
            LockerError::AlreadyLocked(addr) => write!(f, "row already locked: {addr}"),
            LockerError::Dram(err) => write!(f, "dram error: {err}"),
            LockerError::BadRange { start, end } => {
                write!(f, "invalid physical range [{start:#x}, {end:#x})")
            }
        }
    }
}

impl Error for LockerError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LockerError::Dram(err) => Some(err),
            _ => None,
        }
    }
}

impl From<DramError> for LockerError {
    fn from(err: DramError) -> Self {
        LockerError::Dram(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        assert!(LockerError::TableFull { capacity: 7168 }.to_string().contains("7168"));
        let err = LockerError::NoFreeRow { bank: 2, subarray: 3 };
        assert!(err.to_string().contains('2') && err.to_string().contains('3'));
    }

    #[test]
    fn dram_error_source_chain() {
        let err = LockerError::from(DramError::InvalidBank(1));
        assert!(Error::source(&err).is_some());
    }
}
