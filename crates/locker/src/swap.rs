//! The in-DRAM SWAP engine.
//!
//! A SWAP exchanges the contents of a locked row and a free row using
//! three RowClone copies through a reserved buffer row (Fig. 4(b)):
//!
//! 1. locked → buffer,
//! 2. free → locked,
//! 3. buffer → free.
//!
//! Because RowClone drives the whole row through the sense amplifiers,
//! process variation can corrupt a copy (§IV-D: 0%, 0.14% and 9.6%
//! erroneous SWAPs at ±0%, ±10% and ±20% variation). The engine injects
//! such errors per copy with a seeded RNG: a failed copy leaves one
//! corrupted bit in the destination row, and the SWAP is reported
//! unsuccessful.
//!
//! Row budget per subarray: the last row is the buffer row; the
//! `free_rows` rows before it form the free pool used as SWAP partners.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashSet;

use dlk_dram::{DramDevice, DramGeometry, RowAddr, RowId};

use crate::config::LockerConfig;
use crate::error::LockerError;
use crate::isa::MicroProgram;

/// Result of one SWAP operation.
#[derive(Debug, Clone, PartialEq)]
pub struct SwapOutcome {
    /// The micro-program that realized the SWAP (three copies + done).
    pub program: MicroProgram,
    /// `true` if all three copies completed without error.
    pub success: bool,
    /// Indices (0..3) of copies that failed.
    pub failed_copies: Vec<usize>,
    /// Device cycles consumed.
    pub cycles: u64,
    /// Energy consumed, picojoules.
    pub energy_pj: f64,
}

/// Plans and executes SWAPs with error injection.
#[derive(Debug)]
pub struct SwapEngine {
    copy_error_rate: f64,
    free_rows: u32,
    rng: StdRng,
}

impl SwapEngine {
    /// Creates an engine from the locker configuration.
    pub fn new(config: &LockerConfig) -> Self {
        Self {
            copy_error_rate: config.copy_error_rate,
            free_rows: config.free_rows_per_subarray,
            rng: StdRng::seed_from_u64(config.seed),
        }
    }

    /// The reserved buffer row of a subarray (its last row).
    pub fn buffer_row(geometry: &DramGeometry, bank: u16, subarray: u16) -> RowAddr {
        RowAddr::new(bank, subarray, geometry.rows_per_subarray - 1)
    }

    /// The free-row pool of a subarray: the `free_rows` rows just below
    /// the buffer row.
    pub fn free_pool(&self, geometry: &DramGeometry, bank: u16, subarray: u16) -> Vec<RowAddr> {
        let top = geometry.rows_per_subarray - 1; // buffer row
        (top.saturating_sub(self.free_rows)..top)
            .map(|row| RowAddr::new(bank, subarray, row))
            .collect()
    }

    /// Highest row index usable for ordinary data (below the free pool).
    pub fn usable_rows(&self, geometry: &DramGeometry) -> u32 {
        geometry.rows_per_subarray - 1 - self.free_rows
    }

    /// Picks a random free row of `locked`'s subarray that is not in
    /// `in_use`.
    ///
    /// # Errors
    ///
    /// Returns [`LockerError::NoFreeRow`] if the pool is exhausted.
    pub fn pick_free_row(
        &mut self,
        geometry: &DramGeometry,
        locked: RowAddr,
        in_use: &HashSet<RowId>,
    ) -> Result<RowAddr, LockerError> {
        let pool: Vec<RowAddr> = self
            .free_pool(geometry, locked.bank, locked.subarray)
            .into_iter()
            .filter(|row| !in_use.contains(&geometry.row_id(*row)))
            .collect();
        if pool.is_empty() {
            return Err(LockerError::NoFreeRow { bank: locked.bank, subarray: locked.subarray });
        }
        Ok(pool[self.rng.random_range(0..pool.len())])
    }

    /// Executes the three-copy SWAP of `a` and `b` through the buffer
    /// row, injecting per-copy errors.
    ///
    /// # Errors
    ///
    /// Returns an error if the rows do not share a subarray (SWAP uses
    /// Fast-Parallel-Mode RowClone).
    pub fn execute(
        &mut self,
        dram: &mut DramDevice,
        a: RowAddr,
        b: RowAddr,
    ) -> Result<SwapOutcome, LockerError> {
        if a.bank != b.bank || a.subarray != b.subarray {
            return Err(LockerError::Dram(dlk_dram::DramError::CrossSubarrayClone {
                src: a,
                dst: b,
            }));
        }
        let geometry = *dram.geometry();
        let buffer = Self::buffer_row(&geometry, a.bank, a.subarray);
        let program = MicroProgram::swap(0, 1, 2);
        let begin = dram.now();
        let mut energy = 0.0;
        let mut failed = Vec::new();
        for (index, (src, dst)) in [(a, buffer), (b, a), (buffer, b)].into_iter().enumerate() {
            let result = dram.row_clone(src, dst)?;
            energy += result.energy_pj;
            if self.copy_error_rate > 0.0 && self.rng.random_bool(self.copy_error_rate) {
                // Charge-sharing failure: one destination cell latches
                // the wrong value.
                let bit = self.rng.random_range(0..geometry.row_bytes * 8);
                dram.flip_bit(dst, bit)?;
                failed.push(index);
            }
        }
        Ok(SwapOutcome {
            program,
            success: failed.is_empty(),
            failed_copies: failed,
            cycles: dram.now() - begin,
            energy_pj: energy,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlk_dram::DramConfig;

    fn setup(error_rate: f64) -> (DramDevice, SwapEngine) {
        let dram = DramDevice::new(DramConfig::tiny_for_tests());
        let config = LockerConfig { copy_error_rate: error_rate, ..LockerConfig::default() };
        (dram, SwapEngine::new(&config))
    }

    #[test]
    fn swap_exchanges_rows() {
        let (mut dram, mut engine) = setup(0.0);
        let a = RowAddr::new(0, 0, 3);
        let b = RowAddr::new(0, 0, 40);
        dram.write_row(a, &[0x11; 64]).unwrap();
        dram.write_row(b, &[0x22; 64]).unwrap();
        let outcome = engine.execute(&mut dram, a, b).unwrap();
        assert!(outcome.success);
        assert_eq!(outcome.program.len(), 4);
        assert!(outcome.cycles > 0);
        assert_eq!(dram.read_row(a).unwrap(), vec![0x22; 64]);
        assert_eq!(dram.read_row(b).unwrap(), vec![0x11; 64]);
    }

    #[test]
    fn swap_twice_restores_original() {
        let (mut dram, mut engine) = setup(0.0);
        let a = RowAddr::new(0, 1, 3);
        let b = RowAddr::new(0, 1, 40);
        dram.write_row(a, &[0xAB; 64]).unwrap();
        engine.execute(&mut dram, a, b).unwrap();
        engine.execute(&mut dram, a, b).unwrap();
        assert_eq!(dram.read_row(a).unwrap(), vec![0xAB; 64]);
    }

    #[test]
    fn error_injection_corrupts_and_reports() {
        let (mut dram, mut engine) = setup(1.0); // every copy fails
        let a = RowAddr::new(0, 0, 3);
        let b = RowAddr::new(0, 0, 40);
        dram.write_row(a, &[0u8; 64]).unwrap();
        dram.write_row(b, &[0u8; 64]).unwrap();
        let outcome = engine.execute(&mut dram, a, b).unwrap();
        assert!(!outcome.success);
        assert_eq!(outcome.failed_copies, vec![0, 1, 2]);
        // At least one row differs from all-zero now.
        let corrupted = dram.read_row(a).unwrap().iter().any(|&x| x != 0)
            || dram.read_row(b).unwrap().iter().any(|&x| x != 0)
            || dram
                .read_row(SwapEngine::buffer_row(dram.geometry(), 0, 0))
                .unwrap()
                .iter()
                .any(|&x| x != 0);
        assert!(corrupted);
    }

    #[test]
    fn observed_failure_rate_tracks_configured_rate() {
        // Per-copy error p=0.0333 => swap failure 1-(1-p)^3 ≈ 9.6%.
        let p = 1.0 - (1.0f64 - 0.096).powf(1.0 / 3.0);
        let (mut dram, mut engine) = setup(p);
        let a = RowAddr::new(0, 0, 3);
        let b = RowAddr::new(0, 0, 40);
        let trials = 2000;
        let mut failures = 0;
        for _ in 0..trials {
            if !engine.execute(&mut dram, a, b).unwrap().success {
                failures += 1;
            }
        }
        let rate = failures as f64 / trials as f64;
        assert!((rate - 0.096).abs() < 0.03, "rate {rate}");
    }

    #[test]
    fn buffer_row_is_last_row() {
        let geometry = DramGeometry::tiny();
        let buffer = SwapEngine::buffer_row(&geometry, 1, 1);
        assert_eq!(buffer.row, geometry.rows_per_subarray - 1);
    }

    #[test]
    fn free_pool_sits_below_buffer() {
        let (_, engine) = setup(0.0);
        let geometry = DramGeometry::tiny();
        let pool = engine.free_pool(&geometry, 0, 0);
        assert_eq!(pool.len(), 4);
        assert!(pool.iter().all(|row| row.row < geometry.rows_per_subarray - 1));
        assert!(pool.iter().all(|row| row.row >= engine.usable_rows(&geometry)));
    }

    #[test]
    fn pick_free_row_respects_in_use() {
        let (_, mut engine) = setup(0.0);
        let geometry = DramGeometry::tiny();
        let locked = RowAddr::new(0, 0, 5);
        let mut in_use = HashSet::new();
        // Exhaust the pool one row at a time.
        for _ in 0..4 {
            let row = engine.pick_free_row(&geometry, locked, &in_use).unwrap();
            assert!(in_use.insert(geometry.row_id(row)), "row handed out twice");
        }
        assert!(matches!(
            engine.pick_free_row(&geometry, locked, &in_use),
            Err(LockerError::NoFreeRow { .. })
        ));
    }

    #[test]
    fn cross_subarray_swap_rejected() {
        let (mut dram, mut engine) = setup(0.0);
        let a = RowAddr::new(0, 0, 3);
        let b = RowAddr::new(0, 1, 3);
        assert!(engine.execute(&mut dram, a, b).is_err());
    }
}
