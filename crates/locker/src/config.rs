//! DRAM-Locker configuration.

use serde::{Deserialize, Serialize};

/// Which rows the protection plan locks.
///
/// The paper argues for locking the *adjacent* rows of protected data:
/// the protected rows themselves are hot (weights are read constantly),
/// so locking them would force a SWAP on nearly every access, while
/// their neighbours — the rows an attacker must hammer — are cold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum LockTarget {
    /// Lock the rows physically adjacent to the protected data (the
    /// aggressor-candidate rows). The paper's choice.
    #[default]
    AdjacentRows,
    /// Lock the protected data rows themselves (ablation baseline).
    DataRows,
    /// Lock both the data rows and their neighbours (belt and braces;
    /// maximum unlock churn).
    Both,
}

/// Configuration of the [`DramLocker`](crate::DramLocker) defense.
///
/// # Example
///
/// ```
/// use dlk_locker::LockerConfig;
/// let config = LockerConfig::default();
/// assert_eq!(config.relock_interval, 1000);      // paper: 1k R/W
/// assert_eq!(config.table_capacity_bytes, 56 * 1024); // paper: 56 KB SRAM
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LockerConfig {
    /// R/W instructions after a SWAP before the row is swapped back and
    /// re-locked (1k in the paper).
    pub relock_interval: u64,
    /// SRAM budget of the lock-table in bytes (56 KB in the paper's
    /// Table I).
    pub table_capacity_bytes: usize,
    /// Bytes per lock-table entry (a packed row id).
    pub entry_bytes: usize,
    /// Lock-table lookup latency charged on every request, cycles.
    pub check_cycles: u64,
    /// Probability that one RowClone copy of a SWAP fails (process
    /// variation; §IV-D reports 0%, 0.14% and 9.6% at ±0/10/20%).
    pub copy_error_rate: f64,
    /// Rows per subarray reserved as the free-row pool for SWAPs.
    pub free_rows_per_subarray: u32,
    /// Which rows the protection plan locks.
    pub lock_target: LockTarget,
    /// RNG seed for free-row selection and error injection.
    pub seed: u64,
}

impl Default for LockerConfig {
    fn default() -> Self {
        Self {
            relock_interval: 1000,
            table_capacity_bytes: 56 * 1024,
            entry_bytes: 8,
            check_cycles: 1,
            copy_error_rate: 0.0,
            free_rows_per_subarray: 4,
            lock_target: LockTarget::AdjacentRows,
            seed: 0xD1A0_10CC,
        }
    }
}

impl LockerConfig {
    /// Maximum number of lock-table entries that fit the SRAM budget.
    pub fn table_capacity_entries(&self) -> usize {
        self.table_capacity_bytes / self.entry_bytes
    }

    /// Configuration with the worst-case ±20% process variation error
    /// rate from §IV-D (9.6% per SWAP, i.e. per three-copy sequence;
    /// the per-copy rate is its cube root).
    pub fn with_worst_case_variation(mut self) -> Self {
        // 1 - (1-p)^3 = 0.096  =>  p = 1 - (1-0.096)^(1/3)
        self.copy_error_rate = 1.0 - (1.0f64 - 0.096).powf(1.0 / 3.0);
        self
    }

    /// Configuration with an explicit per-copy error rate.
    pub fn with_copy_error_rate(mut self, rate: f64) -> Self {
        self.copy_error_rate = rate;
        self
    }

    /// Probability that a whole SWAP (three copies) succeeds.
    pub fn swap_success_probability(&self) -> f64 {
        (1.0 - self.copy_error_rate).powi(3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_entries_from_sram_budget() {
        let config = LockerConfig::default();
        assert_eq!(config.table_capacity_entries(), 56 * 1024 / 8);
    }

    #[test]
    fn worst_case_variation_gives_9_6_percent_swap_failure() {
        let config = LockerConfig::default().with_worst_case_variation();
        let failure = 1.0 - config.swap_success_probability();
        assert!((failure - 0.096).abs() < 1e-9, "failure {failure}");
    }

    #[test]
    fn zero_error_rate_means_certain_swaps() {
        let config = LockerConfig::default();
        assert_eq!(config.swap_success_probability(), 1.0);
    }

    #[test]
    fn default_lock_target_is_adjacent() {
        assert_eq!(LockTarget::default(), LockTarget::AdjacentRows);
    }
}
