//! Software support: the protection plan.
//!
//! The paper's framework "allows users to customize the data they are
//! willing to protect without requiring changes to the framework". A
//! [`ProtectionPlan`] is that user-facing API: the application registers
//! the physical ranges of its critical data (e.g. a DNN's weight
//! tensors), and the plan compiles them into the set of rows to lock —
//! by default the rows *adjacent* to the data (the aggressor-candidate
//! rows an attacker must hammer), per the paper's argument that locking
//! hot data rows would cause constant unlock churn.

use std::collections::BTreeSet;

use dlk_dram::{RowAddr, RowId};
use dlk_memctrl::AddressMapper;

use crate::config::LockTarget;
use crate::error::LockerError;
use crate::locker::DramLocker;

/// A compiled set of rows to protect.
///
/// # Example
///
/// ```
/// use dlk_dram::DramGeometry;
/// use dlk_memctrl::{AddressMapper, MappingScheme};
/// use dlk_locker::{LockTarget, ProtectionPlan};
///
/// let geom = DramGeometry::tiny();
/// let mapper = AddressMapper::new(geom, MappingScheme::BankSequential);
/// let mut plan = ProtectionPlan::new(LockTarget::AdjacentRows);
/// plan.protect_range(&mapper, 10 * 64, 11 * 64).unwrap(); // one row of data
/// // Locks the two neighbours of row 10, not row 10 itself.
/// assert_eq!(plan.lock_rows().count(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ProtectionPlan {
    target: LockTarget,
    radius: u32,
    data_rows: BTreeSet<(u16, u16, u32)>,
    lock_rows: BTreeSet<(u16, u16, u32)>,
}

impl ProtectionPlan {
    /// Creates an empty plan with the given lock-target policy and the
    /// default lock radius of 1 (immediate neighbours).
    pub fn new(target: LockTarget) -> Self {
        Self { target, radius: 1, data_rows: BTreeSet::new(), lock_rows: BTreeSet::new() }
    }

    /// Sets the lock radius: how many rows on each side of protected
    /// data are locked. Radius 1 covers classic RowHammer; radius 2
    /// additionally covers Half-Double-style distance-2 disturbance
    /// (Kogler et al., USENIX Security 2022), which the paper names as
    /// the attack class that breaks distance-1 victim-refresh schemes.
    pub fn with_radius(mut self, radius: u32) -> Self {
        self.radius = radius.max(1);
        self
    }

    /// The lock radius.
    pub fn radius(&self) -> u32 {
        self.radius
    }

    /// The lock-target policy.
    pub fn target(&self) -> LockTarget {
        self.target
    }

    /// Registers the physical byte range `[start, end)` as protected
    /// data, expanding the lock set per the policy.
    ///
    /// # Errors
    ///
    /// Returns [`LockerError::BadRange`] for empty or unmappable ranges.
    pub fn protect_range(
        &mut self,
        mapper: &AddressMapper,
        start: u64,
        end: u64,
    ) -> Result<(), LockerError> {
        if start >= end {
            return Err(LockerError::BadRange { start, end });
        }
        let geometry = *mapper.geometry();
        let row_bytes = geometry.row_bytes as u64;
        let mut phys = start;
        while phys < end {
            let (row, _) =
                mapper.to_dram(phys).map_err(|_| LockerError::BadRange { start, end })?;
            self.data_rows.insert((row.bank, row.subarray, row.row));
            match self.target {
                LockTarget::DataRows => {
                    self.lock_rows.insert((row.bank, row.subarray, row.row));
                }
                LockTarget::AdjacentRows => {
                    self.insert_neighbors(row, &geometry);
                }
                LockTarget::Both => {
                    self.lock_rows.insert((row.bank, row.subarray, row.row));
                    self.insert_neighbors(row, &geometry);
                }
            }
            phys = (phys / row_bytes + 1) * row_bytes;
        }
        if self.target == LockTarget::AdjacentRows {
            // Data rows themselves must stay accessible: if a data row
            // was pulled in as a neighbour of another data row, drop it.
            for &row in &self.data_rows {
                self.lock_rows.remove(&row);
            }
        }
        Ok(())
    }

    /// Rows holding protected data.
    pub fn data_rows(&self) -> impl Iterator<Item = RowAddr> + '_ {
        self.data_rows.iter().map(|&(b, s, r)| RowAddr::new(b, s, r))
    }

    /// Rows the plan will lock.
    pub fn lock_rows(&self) -> impl Iterator<Item = RowAddr> + '_ {
        self.lock_rows.iter().map(|&(b, s, r)| RowAddr::new(b, s, r))
    }

    /// Flat ids of the rows the plan will lock.
    pub fn lock_row_ids<'a>(
        &'a self,
        mapper: &'a AddressMapper,
    ) -> impl Iterator<Item = RowId> + 'a {
        self.lock_rows().map(|row| mapper.geometry().row_id(row))
    }

    /// Applies the plan to a locker, returning how many rows were
    /// newly locked.
    ///
    /// # Errors
    ///
    /// Returns [`LockerError::TableFull`] if the SRAM budget is spent.
    pub fn apply(&self, locker: &mut DramLocker) -> Result<usize, LockerError> {
        let mut locked = 0;
        for row in self.lock_rows() {
            if !locker.lock_table().peek(locker.geometry().row_id(row)) {
                locker.lock_row(row)?;
                locked += 1;
            }
        }
        Ok(locked)
    }

    fn insert_neighbors(&mut self, row: RowAddr, geometry: &dlk_dram::DramGeometry) {
        for distance in 1..=self.radius as i64 {
            for offset in [-distance, distance] {
                if let Some(neighbor) = row.neighbor(offset, geometry) {
                    self.lock_rows.insert((neighbor.bank, neighbor.subarray, neighbor.row));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LockerConfig;
    use dlk_dram::DramGeometry;
    use dlk_memctrl::MappingScheme;

    fn mapper() -> AddressMapper {
        AddressMapper::new(DramGeometry::tiny(), MappingScheme::BankSequential)
    }

    #[test]
    fn adjacent_policy_locks_neighbors_not_data() {
        let mapper = mapper();
        let mut plan = ProtectionPlan::new(LockTarget::AdjacentRows);
        plan.protect_range(&mapper, 10 * 64, 11 * 64).unwrap();
        let locked: Vec<u32> = plan.lock_rows().map(|r| r.row).collect();
        assert_eq!(locked, vec![9, 11]);
        assert_eq!(plan.data_rows().count(), 1);
    }

    #[test]
    fn contiguous_data_locks_only_outer_neighbors() {
        // Data in rows 10..=12: neighbours are 9..=13 minus the data
        // rows themselves -> lock 9 and 13 only.
        let mapper = mapper();
        let mut plan = ProtectionPlan::new(LockTarget::AdjacentRows);
        plan.protect_range(&mapper, 10 * 64, 13 * 64).unwrap();
        let locked: Vec<u32> = plan.lock_rows().map(|r| r.row).collect();
        assert_eq!(locked, vec![9, 13]);
    }

    #[test]
    fn data_rows_policy_locks_data_itself() {
        let mapper = mapper();
        let mut plan = ProtectionPlan::new(LockTarget::DataRows);
        plan.protect_range(&mapper, 10 * 64, 12 * 64).unwrap();
        let locked: Vec<u32> = plan.lock_rows().map(|r| r.row).collect();
        assert_eq!(locked, vec![10, 11]);
    }

    #[test]
    fn both_policy_is_union() {
        let mapper = mapper();
        let mut plan = ProtectionPlan::new(LockTarget::Both);
        plan.protect_range(&mapper, 10 * 64, 11 * 64).unwrap();
        let locked: Vec<u32> = plan.lock_rows().map(|r| r.row).collect();
        assert_eq!(locked, vec![9, 10, 11]);
    }

    #[test]
    fn empty_range_rejected() {
        let mapper = mapper();
        let mut plan = ProtectionPlan::new(LockTarget::AdjacentRows);
        assert!(plan.protect_range(&mapper, 100, 100).is_err());
    }

    #[test]
    fn apply_locks_rows_in_locker() {
        let mapper = mapper();
        let mut plan = ProtectionPlan::new(LockTarget::AdjacentRows);
        plan.protect_range(&mapper, 10 * 64, 11 * 64).unwrap();
        let mut locker = DramLocker::new(LockerConfig::default(), DramGeometry::tiny());
        let locked = plan.apply(&mut locker).unwrap();
        assert_eq!(locked, 2);
        assert_eq!(locker.lock_table().len(), 2);
        // Re-applying is idempotent.
        assert_eq!(plan.apply(&mut locker).unwrap(), 0);
    }

    #[test]
    fn radius_two_locks_half_double_aggressors() {
        let mapper = mapper();
        let mut plan = ProtectionPlan::new(LockTarget::AdjacentRows).with_radius(2);
        plan.protect_range(&mapper, 10 * 64, 11 * 64).unwrap();
        let locked: Vec<u32> = plan.lock_rows().map(|r| r.row).collect();
        assert_eq!(locked, vec![8, 9, 11, 12]);
    }

    #[test]
    fn radius_zero_is_clamped_to_one() {
        let plan = ProtectionPlan::new(LockTarget::AdjacentRows).with_radius(0);
        assert_eq!(plan.radius(), 1);
    }

    #[test]
    fn subarray_edge_data_has_single_neighbor() {
        let mapper = mapper();
        let mut plan = ProtectionPlan::new(LockTarget::AdjacentRows);
        plan.protect_range(&mapper, 0, 64).unwrap(); // row 0
        let locked: Vec<u32> = plan.lock_rows().map(|r| r.row).collect();
        assert_eq!(locked, vec![1]);
    }
}
