//! Property-based tests of DRAM-Locker invariants.

use proptest::prelude::*;

use dlk_dram::{DramConfig, DramDevice, RowAddr};
use dlk_locker::{DramLocker, Instruction, LockerConfig};
use dlk_memctrl::{DefenseHook, HookAction, MemRequest};

fn read_request(untrusted: bool) -> MemRequest {
    let req = MemRequest::read(0, 1);
    if untrusted {
        req.untrusted()
    } else {
        req
    }
}

proptest! {
    /// Untrusted accesses to locked rows are ALWAYS denied — across any
    /// interleaving of trusted/untrusted traffic, swaps and re-locks.
    #[test]
    fn locked_rows_never_served_to_attackers(
        ops in proptest::collection::vec((0u32..40, any::<bool>()), 1..120),
        relock_interval in 1u64..50,
    ) {
        let config = DramConfig::tiny_for_tests();
        let locker_config = LockerConfig { relock_interval, ..LockerConfig::default() };
        let mut locker = DramLocker::new(locker_config, config.geometry);
        let mut dram = DramDevice::new(config);
        let locked_row = RowAddr::new(0, 0, 50);
        locker.lock_row(locked_row).unwrap();
        for (row, untrusted) in ops {
            let target = RowAddr::new(0, 0, row);
            locker.before_access(&read_request(untrusted), target, &mut dram);
            // The locked home row, probed by an attacker, must deny.
            let action =
                locker.before_access(&read_request(true), locked_row, &mut dram);
            prop_assert_eq!(action, HookAction::Deny);
        }
    }

    /// Trusted accesses to a locked row are never denied while the
    /// free pool has room — the defense cannot starve the victim.
    #[test]
    fn victims_always_get_their_data(accesses in 1usize..60) {
        let config = DramConfig::tiny_for_tests();
        let mut locker = DramLocker::new(LockerConfig::default(), config.geometry);
        let mut dram = DramDevice::new(config);
        let row = RowAddr::new(0, 1, 5);
        dram.write_row(row, &[0x3C; 64]).unwrap();
        locker.lock_row(row).unwrap();
        for _ in 0..accesses {
            let action = locker.before_access(&read_request(false), row, &mut dram);
            match action {
                HookAction::Redirect(current) => {
                    prop_assert_eq!(dram.read_row(current).unwrap(), vec![0x3C; 64]);
                }
                other => prop_assert!(false, "victim denied: {other:?}"),
            }
        }
    }

    /// Data survives arbitrary swap/relock cycles: after any number of
    /// trusted accesses and interleaved relocks, the locked row's data
    /// is intact at its current location.
    #[test]
    fn data_survives_relock_cycles(
        batches in 1usize..10,
        relock_interval in 2u64..20,
    ) {
        let config = DramConfig::tiny_for_tests();
        let locker_config = LockerConfig { relock_interval, ..LockerConfig::default() };
        let mut locker = DramLocker::new(locker_config, config.geometry);
        let mut dram = DramDevice::new(config);
        let row = RowAddr::new(0, 0, 7);
        dram.write_row(row, &[0x77; 64]).unwrap();
        locker.lock_row(row).unwrap();
        for _ in 0..batches {
            // Touch the locked row, then enough other traffic to
            // trigger the re-lock.
            locker.before_access(&read_request(false), row, &mut dram);
            for filler in 0..relock_interval {
                let other = RowAddr::new(0, 0, 20 + (filler % 10) as u32);
                locker.before_access(&read_request(false), other, &mut dram);
            }
        }
        // Wherever the data is now, it is intact.
        let location = locker.current_location(row).unwrap_or(row);
        prop_assert_eq!(dram.read_row(location).unwrap(), vec![0x77; 64]);
    }

    /// Instruction encode/decode over the full value space: decoding
    /// never panics, and decodable words re-encode to themselves.
    #[test]
    fn isa_total_over_u16(word in any::<u16>()) {
        if let Ok(instruction) = Instruction::decode(word) {
            prop_assert_eq!(instruction.encode(), word);
        }
    }
}
