//! The DRAM device: banks + subarray storage + disturbance + refresh.
//!
//! [`DramDevice`] executes [`DramCommand`]s at command-level timing
//! fidelity. Every activation feeds the RowHammer tracker; threshold
//! crossings corrupt victim-row data in place, exactly as a physical
//! disturbance would. Auto-refresh is modeled on the device clock: one
//! `REF` per tREFI, with all per-row hammer counters reset once per
//! refresh window (tREFW, 64 ms on DDR4).

use serde::{Deserialize, Serialize};

use crate::bank::Bank;
use crate::command::{CommandKind, CommandResult, DramCommand};
use crate::error::DramError;
use crate::geometry::{DramGeometry, RowAddr, RowId};
use crate::rowclone::{CloneMode, RowCloneEngine};
use crate::rowhammer::{DisturbanceEvent, HammerTracker, RowHammerConfig};
use crate::stats::{DramStats, EnergyModel};
use crate::subarray::Subarray;
use crate::timing::TimingParams;

/// Full configuration of a [`DramDevice`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Physical organization.
    pub geometry: DramGeometry,
    /// Timing parameters.
    pub timing: TimingParams,
    /// Energy model.
    pub energy: EnergyModel,
    /// RowHammer disturbance model.
    pub hammer: RowHammerConfig,
    /// Whether auto-refresh is simulated (disable for pure functional
    /// tests where the clock never moves far).
    pub auto_refresh: bool,
}

impl Default for DramConfig {
    fn default() -> Self {
        Self {
            geometry: DramGeometry::default(),
            timing: TimingParams::ddr4_2400(),
            energy: EnergyModel::default(),
            hammer: RowHammerConfig::default(),
            auto_refresh: true,
        }
    }
}

impl DramConfig {
    /// A tiny configuration for unit tests: small geometry, low TRH.
    pub fn tiny_for_tests() -> Self {
        Self {
            geometry: DramGeometry::tiny(),
            timing: TimingParams::ddr4_2400(),
            energy: EnergyModel::default(),
            hammer: RowHammerConfig::with_trh(16),
            auto_refresh: false,
        }
    }

    /// The DDR4 datasheet configuration: [`TimingParams::ddr4`] paired
    /// with [`EnergyModel::ddr4`] on the default scaled geometry.
    pub fn ddr4() -> Self {
        Self { timing: TimingParams::ddr4(), energy: EnergyModel::ddr4(), ..Self::default() }
    }

    /// The LPDDR4 datasheet configuration: [`TimingParams::lpddr4`]
    /// paired with [`EnergyModel::lpddr4`] on the default scaled
    /// geometry.
    pub fn lpddr4() -> Self {
        Self { timing: TimingParams::lpddr4(), energy: EnergyModel::lpddr4(), ..Self::default() }
    }
}

/// A command-level DRAM device model.
///
/// # Example
///
/// ```
/// use dlk_dram::{DramConfig, DramDevice, DramCommand, RowAddr};
///
/// # fn main() -> Result<(), dlk_dram::DramError> {
/// let mut dram = DramDevice::new(DramConfig::tiny_for_tests());
/// let row = RowAddr::new(0, 0, 3);
/// dram.issue(DramCommand::Act(row))?;
/// dram.issue(DramCommand::Rd { bank: 0, col: 0 })?;
/// dram.issue(DramCommand::Pre(0))?;
/// assert!(dram.stats().cycles > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DramDevice {
    config: DramConfig,
    banks: Vec<Bank>,
    storage: Vec<Subarray>,
    hammer: HammerTracker,
    clone_engine: RowCloneEngine,
    stats: DramStats,
    clock: u64,
    next_refresh: u64,
    window_end: u64,
}

impl DramDevice {
    /// Creates a device from a configuration.
    pub fn new(config: DramConfig) -> Self {
        let geometry = config.geometry;
        let banks = (0..geometry.banks).map(|_| Bank::new()).collect();
        let storage = (0..geometry.banks as usize * geometry.subarrays_per_bank as usize)
            .map(|_| Subarray::new(geometry.row_bytes))
            .collect();
        let clone_engine = RowCloneEngine::new(config.timing, config.energy, geometry.row_bytes);
        Self {
            banks,
            storage,
            hammer: HammerTracker::new(config.hammer),
            clone_engine,
            stats: DramStats::new(),
            clock: 0,
            next_refresh: config.timing.trefi,
            window_end: config.timing.trefw,
            config,
        }
    }

    /// The device geometry.
    pub fn geometry(&self) -> &DramGeometry {
        &self.config.geometry
    }

    /// The timing parameters.
    pub fn timing(&self) -> &TimingParams {
        &self.config.timing
    }

    /// The configuration the device was built with.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Aggregate statistics so far.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// The RowClone cost model.
    pub fn clone_engine(&self) -> &RowCloneEngine {
        &self.clone_engine
    }

    /// The RowHammer tracker (activation counts, flip plans).
    pub fn hammer(&self) -> &HammerTracker {
        &self.hammer
    }

    /// Mutable access to the RowHammer tracker, e.g. to register
    /// attacker flip plans.
    pub fn hammer_mut(&mut self) -> &mut HammerTracker {
        &mut self.hammer
    }

    /// Current device clock in cycles.
    pub fn now(&self) -> u64 {
        self.clock
    }

    /// Advances the device clock by `cycles` (idle time).
    pub fn advance(&mut self, cycles: u64) {
        self.clock += cycles;
        self.stats.cycles = self.clock;
        self.stats.energy_pj += cycles as f64 * self.config.energy.static_pj_per_cycle;
        self.service_refresh();
    }

    fn storage_index(&self, bank: u16, subarray: u16) -> usize {
        bank as usize * self.config.geometry.subarrays_per_bank as usize + subarray as usize
    }

    fn validate_row(&self, addr: RowAddr) -> Result<(), DramError> {
        if self.config.geometry.contains(addr) {
            Ok(())
        } else if addr.bank >= self.config.geometry.banks {
            Err(DramError::InvalidBank(addr.bank))
        } else {
            Err(DramError::InvalidRow(addr))
        }
    }

    /// Issues one DRAM command. The clock advances to the command's
    /// completion; disturbance events are applied to stored data and
    /// returned in the result.
    ///
    /// # Errors
    ///
    /// Returns an error if the command violates the bank state machine
    /// or references an address outside the geometry. The device state
    /// is unchanged on error.
    pub fn issue(&mut self, cmd: DramCommand) -> Result<CommandResult, DramError> {
        if self.config.auto_refresh {
            self.service_refresh();
        }
        let timing = self.config.timing;
        let mut disturbances = Vec::new();
        let (start, done) = match cmd {
            DramCommand::Act(row) => {
                self.validate_row(row)?;
                let span = self.banks[row.bank as usize].activate(row, self.clock, &timing)?;
                disturbances = self.hammer.on_activate(row, &self.config.geometry);
                span
            }
            DramCommand::Pre(bank) => {
                if bank >= self.config.geometry.banks {
                    return Err(DramError::InvalidBank(bank));
                }
                self.banks[bank as usize].precharge(self.clock, &timing)?
            }
            DramCommand::Rd { bank, col } | DramCommand::Wr { bank, col } => {
                if bank >= self.config.geometry.banks {
                    return Err(DramError::InvalidBank(bank));
                }
                if col >= self.config.geometry.row_bytes {
                    return Err(DramError::InvalidColumn {
                        col,
                        row_bytes: self.config.geometry.row_bytes,
                    });
                }
                if matches!(cmd, DramCommand::Rd { .. }) {
                    self.banks[bank as usize].read(self.clock, &timing)?
                } else {
                    self.banks[bank as usize].write(self.clock, &timing)?
                }
            }
            DramCommand::Ref => {
                let done = self.execute_refresh();
                (self.clock, done)
            }
            DramCommand::Aap { src, dst } => {
                self.validate_row(src)?;
                self.validate_row(dst)?;
                if self.clone_engine.mode(src, dst) != CloneMode::Fpm {
                    return Err(DramError::CrossSubarrayClone { src, dst });
                }
                let bank = &mut self.banks[src.bank as usize];
                // AAP begins from a precharged bank; close any open row.
                if bank.open_row().is_some() {
                    bank.precharge(self.clock, &timing)?;
                }
                let (start, _) = bank.activate(src, self.clock, &timing)?;
                bank.aap_second_act(dst, self.clock, &timing)?;
                let (_, done) = bank.precharge(self.clock, &timing)?;
                // Both activations hammer their neighbourhoods.
                disturbances = self.hammer.on_activate(src, &self.config.geometry);
                disturbances.extend(self.hammer.on_activate(dst, &self.config.geometry));
                // Functional copy.
                let idx = self.storage_index(src.bank, src.subarray);
                self.storage[idx].copy_row(src.row, dst.row);
                (start, done)
            }
        };
        let energy = self.config.energy.energy_pj(cmd.kind());
        self.stats.record(cmd.kind(), energy);
        self.apply_disturbances(&disturbances)?;
        self.clock = done;
        self.stats.cycles = self.clock;
        Ok(CommandResult { start_cycle: start, done_cycle: done, energy_pj: energy, disturbances })
    }

    fn apply_disturbances(&mut self, events: &[DisturbanceEvent]) -> Result<(), DramError> {
        for event in events {
            let idx = self.storage_index(event.target.row.bank, event.target.row.subarray);
            self.storage[idx].flip_bit(event.target.row.row, event.target.bit)?;
            self.stats.disturbances += 1;
            self.stats.bit_flips += 1;
        }
        Ok(())
    }

    fn execute_refresh(&mut self) -> u64 {
        let done = self.clock + self.config.timing.trfc;
        for bank in &mut self.banks {
            bank.force_idle(done);
        }
        done
    }

    fn service_refresh(&mut self) {
        while self.clock >= self.next_refresh {
            let done = self.execute_refresh();
            self.stats.record(CommandKind::Ref, self.config.energy.ref_pj);
            self.clock = done.max(self.clock);
            self.next_refresh += self.config.timing.trefi;
        }
        while self.clock >= self.window_end {
            self.hammer.reset_window();
            self.window_end += self.config.timing.trefw;
        }
    }

    /// A timed read access: activates the row if needed (closing any
    /// other open row first), then reads `len` bytes at `col`.
    ///
    /// Returns the data and the cycles the access took.
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range addresses.
    pub fn access_read(
        &mut self,
        addr: RowAddr,
        col: usize,
        len: usize,
    ) -> Result<(Vec<u8>, u64), DramError> {
        let begin = self.clock;
        self.open_row_for(addr)?;
        self.issue(DramCommand::Rd { bank: addr.bank, col })?;
        let idx = self.storage_index(addr.bank, addr.subarray);
        let data = self.storage[idx].read_bytes(addr.row, col, len)?;
        Ok((data, self.clock - begin))
    }

    /// A timed write access, mirroring [`DramDevice::access_read`].
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range addresses.
    pub fn access_write(
        &mut self,
        addr: RowAddr,
        col: usize,
        bytes: &[u8],
    ) -> Result<u64, DramError> {
        let begin = self.clock;
        self.open_row_for(addr)?;
        self.issue(DramCommand::Wr { bank: addr.bank, col })?;
        let idx = self.storage_index(addr.bank, addr.subarray);
        self.storage[idx].write_bytes(addr.row, col, bytes)?;
        Ok(self.clock - begin)
    }

    fn open_row_for(&mut self, addr: RowAddr) -> Result<(), DramError> {
        self.validate_row(addr)?;
        match self.banks[addr.bank as usize].open_row() {
            Some(open) if open == addr => {
                self.stats.row_buffer_hits += 1;
            }
            Some(_) => {
                self.stats.row_buffer_misses += 1;
                self.issue(DramCommand::Pre(addr.bank))?;
                self.issue(DramCommand::Act(addr))?;
            }
            None => {
                self.stats.row_buffer_misses += 1;
                self.issue(DramCommand::Act(addr))?;
            }
        }
        Ok(())
    }

    /// Functional (untimed) full-row read — for initialization and
    /// inspection; does not touch the clock, stats or hammer counters.
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range addresses.
    pub fn read_row(&self, addr: RowAddr) -> Result<Vec<u8>, DramError> {
        self.validate_row(addr)?;
        let idx = self.storage_index(addr.bank, addr.subarray);
        Ok(self.storage[idx].read(addr.row))
    }

    /// Functional (untimed) full-row write.
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range addresses or wrong-sized data.
    pub fn write_row(&mut self, addr: RowAddr, data: &[u8]) -> Result<(), DramError> {
        self.validate_row(addr)?;
        let idx = self.storage_index(addr.bank, addr.subarray);
        self.storage[idx].write(addr.row, data)
    }

    /// Functional read of a single bit.
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range addresses.
    pub fn read_bit(&self, addr: RowAddr, bit: usize) -> Result<bool, DramError> {
        self.validate_row(addr)?;
        let idx = self.storage_index(addr.bank, addr.subarray);
        self.storage[idx].read_bit(addr.row, bit)
    }

    /// Functional flip of a single bit (fault injection outside the
    /// hammer path; counted in stats as a bit flip).
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range addresses.
    pub fn flip_bit(&mut self, addr: RowAddr, bit: usize) -> Result<bool, DramError> {
        self.validate_row(addr)?;
        let idx = self.storage_index(addr.bank, addr.subarray);
        let value = self.storage[idx].flip_bit(addr.row, bit)?;
        self.stats.bit_flips += 1;
        Ok(value)
    }

    /// RowClone copy `src -> dst`. Same-subarray pairs use a single AAP
    /// (FPM); others fall back to a timed PSM transfer.
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range addresses.
    pub fn row_clone(&mut self, src: RowAddr, dst: RowAddr) -> Result<CommandResult, DramError> {
        self.validate_row(src)?;
        self.validate_row(dst)?;
        match self.clone_engine.mode(src, dst) {
            CloneMode::Fpm => self.issue(DramCommand::Aap { src, dst }),
            CloneMode::Psm => {
                let start = self.clock;
                let latency = self.clone_engine.latency_cycles(CloneMode::Psm);
                let energy = self.clone_engine.energy_pj(CloneMode::Psm);
                let data = self.read_row(src)?;
                self.write_row(dst, &data)?;
                // PSM activates both rows once.
                let mut disturbances = self.hammer.on_activate(src, &self.config.geometry);
                disturbances.extend(self.hammer.on_activate(dst, &self.config.geometry));
                self.apply_disturbances(&disturbances)?;
                self.clock = start + latency;
                self.stats.cycles = self.clock;
                self.stats.record(CommandKind::Aap, energy);
                Ok(CommandResult {
                    start_cycle: start,
                    done_cycle: start + latency,
                    energy_pj: energy,
                    disturbances,
                })
            }
        }
    }

    /// Swaps two rows in the same subarray using three RowClone copies
    /// through `buffer` (the DRAM-Locker SWAP primitive). Returns the
    /// combined result of the three AAPs.
    ///
    /// # Errors
    ///
    /// Returns an error if the three rows do not share a subarray.
    pub fn swap_rows(
        &mut self,
        a: RowAddr,
        b: RowAddr,
        buffer: RowAddr,
    ) -> Result<CommandResult, DramError> {
        let start = self.clock;
        let mut energy = 0.0;
        let mut disturbances = Vec::new();
        // Step 1: locked row -> buffer; step 2: unlocked -> locked;
        // step 3: buffer -> unlocked.
        for (src, dst) in [(a, buffer), (b, a), (buffer, b)] {
            let result = self.issue(DramCommand::Aap { src, dst })?;
            energy += result.energy_pj;
            disturbances.extend(result.disturbances);
        }
        Ok(CommandResult {
            start_cycle: start,
            done_cycle: self.clock,
            energy_pj: energy,
            disturbances,
        })
    }

    /// Number of hammer activations recorded for `id` in this window.
    pub fn activation_count(&self, id: RowId) -> u64 {
        self.hammer.count(id)
    }

    /// The row currently open in `bank`'s row buffer, if any.
    /// Returns `None` for out-of-range banks as well.
    pub fn open_row_of(&self, bank: u16) -> Option<RowAddr> {
        self.banks.get(bank as usize).and_then(Bank::open_row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> DramDevice {
        DramDevice::new(DramConfig::tiny_for_tests())
    }

    #[test]
    fn functional_row_roundtrip() {
        let mut dram = device();
        let addr = RowAddr::new(1, 1, 7);
        let data = vec![0x5A; dram.geometry().row_bytes];
        dram.write_row(addr, &data).unwrap();
        assert_eq!(dram.read_row(addr).unwrap(), data);
    }

    #[test]
    fn timed_access_moves_clock_and_counts_hits() {
        let mut dram = device();
        let addr = RowAddr::new(0, 0, 1);
        dram.access_write(addr, 0, &[1, 2, 3]).unwrap();
        let (data, _) = dram.access_read(addr, 0, 3).unwrap();
        assert_eq!(data, vec![1, 2, 3]);
        assert_eq!(dram.stats().row_buffer_misses, 1);
        assert_eq!(dram.stats().row_buffer_hits, 1);
        assert!(dram.now() > 0);
    }

    #[test]
    fn conflicting_row_forces_pre_act() {
        let mut dram = device();
        dram.access_read(RowAddr::new(0, 0, 1), 0, 1).unwrap();
        dram.access_read(RowAddr::new(0, 0, 2), 0, 1).unwrap();
        assert_eq!(dram.stats().row_buffer_misses, 2);
        assert_eq!(dram.stats().count(CommandKind::Pre), 1);
        assert_eq!(dram.stats().count(CommandKind::Act), 2);
    }

    #[test]
    fn invalid_addresses_rejected() {
        let mut dram = device();
        let bad_bank = RowAddr::new(99, 0, 0);
        assert_eq!(dram.issue(DramCommand::Act(bad_bank)), Err(DramError::InvalidBank(99)));
        let bad_row = RowAddr::new(0, 0, 10_000);
        assert!(matches!(dram.issue(DramCommand::Act(bad_row)), Err(DramError::InvalidRow(_))));
    }

    #[test]
    fn aap_copies_data_functionally() {
        let mut dram = device();
        let src = RowAddr::new(0, 0, 4);
        let dst = RowAddr::new(0, 0, 9);
        let data = vec![0xCD; dram.geometry().row_bytes];
        dram.write_row(src, &data).unwrap();
        dram.issue(DramCommand::Aap { src, dst }).unwrap();
        assert_eq!(dram.read_row(dst).unwrap(), data);
    }

    #[test]
    fn aap_cross_subarray_rejected() {
        let mut dram = device();
        let src = RowAddr::new(0, 0, 4);
        let dst = RowAddr::new(0, 1, 4);
        assert!(matches!(
            dram.issue(DramCommand::Aap { src, dst }),
            Err(DramError::CrossSubarrayClone { .. })
        ));
    }

    #[test]
    fn psm_clone_crosses_subarrays() {
        let mut dram = device();
        let src = RowAddr::new(0, 0, 4);
        let dst = RowAddr::new(1, 1, 4);
        let data = vec![0xEF; dram.geometry().row_bytes];
        dram.write_row(src, &data).unwrap();
        let result = dram.row_clone(src, dst).unwrap();
        assert_eq!(dram.read_row(dst).unwrap(), data);
        assert!(result.latency() > dram.clone_engine().latency_cycles(CloneMode::Fpm));
    }

    #[test]
    fn swap_rows_exchanges_contents() {
        let mut dram = device();
        let a = RowAddr::new(0, 0, 1);
        let b = RowAddr::new(0, 0, 2);
        let buffer = RowAddr::new(0, 0, 63);
        let da = vec![0xAA; dram.geometry().row_bytes];
        let db = vec![0xBB; dram.geometry().row_bytes];
        dram.write_row(a, &da).unwrap();
        dram.write_row(b, &db).unwrap();
        let result = dram.swap_rows(a, b, buffer).unwrap();
        assert_eq!(dram.read_row(a).unwrap(), db);
        assert_eq!(dram.read_row(b).unwrap(), da);
        assert_eq!(dram.stats().count(CommandKind::Aap), 3);
        assert!(result.latency() > 0);
    }

    #[test]
    fn hammering_past_trh_flips_victim_bit() {
        let mut dram = device();
        let aggressor = RowAddr::new(0, 0, 10);
        let victim = RowAddr::new(0, 0, 11);
        let victim_id = dram.geometry().row_id(victim);
        dram.hammer_mut().set_flip_plan(victim_id, vec![3]);
        assert!(!dram.read_bit(victim, 3).unwrap());
        let trh = dram.config().hammer.trh;
        for _ in 0..trh {
            dram.issue(DramCommand::Act(aggressor)).unwrap();
            dram.issue(DramCommand::Pre(0)).unwrap();
        }
        assert!(dram.read_bit(victim, 3).unwrap(), "victim bit should have flipped");
        assert!(dram.stats().bit_flips >= 1);
    }

    #[test]
    fn auto_refresh_resets_hammer_window() {
        let mut config = DramConfig::tiny_for_tests();
        config.auto_refresh = true;
        // Shrink the refresh window so the test is fast.
        config.timing.trefw = 10_000;
        config.timing.trefi = 2_000;
        let mut dram = DramDevice::new(config);
        let aggressor = RowAddr::new(0, 0, 10);
        let id = dram.geometry().row_id(aggressor);
        dram.issue(DramCommand::Act(aggressor)).unwrap();
        dram.issue(DramCommand::Pre(0)).unwrap();
        assert_eq!(dram.activation_count(id), 1);
        dram.advance(20_000);
        assert_eq!(dram.activation_count(id), 0, "window reset should clear count");
        assert!(dram.stats().count(CommandKind::Ref) > 0);
    }

    #[test]
    fn flip_bit_fault_injection_counts() {
        let mut dram = device();
        let addr = RowAddr::new(0, 0, 0);
        assert!(dram.flip_bit(addr, 12).unwrap());
        assert!(!dram.flip_bit(addr, 12).unwrap());
        assert_eq!(dram.stats().bit_flips, 2);
    }
}
