//! The DRAM command set.
//!
//! Besides the standard `ACT`/`PRE`/`RD`/`WR`/`REF` commands, the model
//! includes the RowClone `AAP` (Activate-Activate-Precharge) command pair
//! used by DRAM-Locker's SWAP: two back-to-back activations without an
//! intervening precharge copy the source row through the sense amplifiers
//! into the destination row.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::geometry::RowAddr;
use crate::rowhammer::DisturbanceEvent;

/// A command issued to the DRAM device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DramCommand {
    /// Activate (open) a row: latch it into the bank's row buffer.
    Act(RowAddr),
    /// Precharge (close) the open row of a bank.
    Pre(u16),
    /// Read a burst from the open row at byte offset `col`.
    Rd {
        /// Bank to read from (its open row supplies the data).
        bank: u16,
        /// Byte offset within the row.
        col: usize,
    },
    /// Write a burst to the open row at byte offset `col`.
    Wr {
        /// Bank to write to.
        bank: u16,
        /// Byte offset within the row.
        col: usize,
    },
    /// Auto-refresh: refresh the next group of rows in every bank.
    Ref,
    /// RowClone AAP: copy `src` into `dst` with back-to-back activations.
    /// Fast-Parallel-Mode requires both rows to share a subarray.
    Aap {
        /// Source row (copied out of).
        src: RowAddr,
        /// Destination row (overwritten).
        dst: RowAddr,
    },
}

impl DramCommand {
    /// The kind of this command, for stats bucketing.
    pub fn kind(&self) -> CommandKind {
        match self {
            DramCommand::Act(_) => CommandKind::Act,
            DramCommand::Pre(_) => CommandKind::Pre,
            DramCommand::Rd { .. } => CommandKind::Rd,
            DramCommand::Wr { .. } => CommandKind::Wr,
            DramCommand::Ref => CommandKind::Ref,
            DramCommand::Aap { .. } => CommandKind::Aap,
        }
    }

    /// The bank this command targets, if any (REF targets all banks).
    pub fn bank(&self) -> Option<u16> {
        match self {
            DramCommand::Act(addr) => Some(addr.bank),
            DramCommand::Pre(bank) => Some(*bank),
            DramCommand::Rd { bank, .. } | DramCommand::Wr { bank, .. } => Some(*bank),
            DramCommand::Ref => None,
            DramCommand::Aap { src, .. } => Some(src.bank),
        }
    }
}

impl fmt::Display for DramCommand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DramCommand::Act(addr) => write!(f, "ACT {addr}"),
            DramCommand::Pre(bank) => write!(f, "PRE b{bank}"),
            DramCommand::Rd { bank, col } => write!(f, "RD b{bank}+{col}"),
            DramCommand::Wr { bank, col } => write!(f, "WR b{bank}+{col}"),
            DramCommand::Ref => f.write_str("REF"),
            DramCommand::Aap { src, dst } => write!(f, "AAP {src} -> {dst}"),
        }
    }
}

/// Command categories used for statistics and energy accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CommandKind {
    /// Row activate.
    Act,
    /// Row precharge.
    Pre,
    /// Column read.
    Rd,
    /// Column write.
    Wr,
    /// Auto refresh.
    Ref,
    /// RowClone activate-activate copy.
    Aap,
}

impl CommandKind {
    /// All command kinds.
    pub const ALL: [CommandKind; 6] = [
        CommandKind::Act,
        CommandKind::Pre,
        CommandKind::Rd,
        CommandKind::Wr,
        CommandKind::Ref,
        CommandKind::Aap,
    ];
}

/// Outcome of issuing a command to the device.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CommandResult {
    /// Cycle at which the command started executing (after any bank
    /// busy-until stall).
    pub start_cycle: u64,
    /// Cycle at which the bank becomes available again.
    pub done_cycle: u64,
    /// Energy consumed, picojoules.
    pub energy_pj: f64,
    /// RowHammer disturbance events triggered by this command (bit flips
    /// injected into victim rows).
    pub disturbances: Vec<DisturbanceEvent>,
}

impl CommandResult {
    /// Latency of the command in cycles.
    pub fn latency(&self) -> u64 {
        self.done_cycle - self.start_cycle
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_maps_every_variant() {
        let row = RowAddr::new(0, 0, 0);
        assert_eq!(DramCommand::Act(row).kind(), CommandKind::Act);
        assert_eq!(DramCommand::Pre(0).kind(), CommandKind::Pre);
        assert_eq!(DramCommand::Rd { bank: 0, col: 0 }.kind(), CommandKind::Rd);
        assert_eq!(DramCommand::Wr { bank: 0, col: 0 }.kind(), CommandKind::Wr);
        assert_eq!(DramCommand::Ref.kind(), CommandKind::Ref);
        assert_eq!(DramCommand::Aap { src: row, dst: row }.kind(), CommandKind::Aap);
    }

    #[test]
    fn bank_of_ref_is_none() {
        assert_eq!(DramCommand::Ref.bank(), None);
        assert_eq!(DramCommand::Pre(3).bank(), Some(3));
    }

    #[test]
    fn display_is_readable() {
        let cmd = DramCommand::Aap { src: RowAddr::new(0, 1, 2), dst: RowAddr::new(0, 1, 3) };
        assert_eq!(cmd.to_string(), "AAP b0.s1.r2 -> b0.s1.r3");
    }

    #[test]
    fn latency_is_done_minus_start() {
        let result = CommandResult { start_cycle: 10, done_cycle: 25, ..Default::default() };
        assert_eq!(result.latency(), 15);
    }
}
