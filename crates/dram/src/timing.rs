//! DDR timing parameters.
//!
//! All values are in memory-clock cycles; [`TimingParams::clock_ghz`]
//! converts cycles to wall-clock time. Presets follow published datasheet
//! values for DDR3-1600, DDR4-2400 and LPDDR4-3200 (command-level
//! granularity — bus burst effects are folded into `cl`/`twr`).

use serde::{Deserialize, Serialize};

/// DRAM timing parameters in clock cycles.
///
/// # Example
///
/// ```
/// use dlk_dram::TimingParams;
/// let t = TimingParams::ddr4_2400();
/// assert!(t.trcd > 0 && t.trp > 0);
/// // An ACT→RD→PRE round trip costs at least tRAS + tRP.
/// assert!(t.row_cycle() >= t.tras + t.trp);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingParams {
    /// Memory clock frequency in GHz (cycle time = 1/clock_ghz ns).
    pub clock_ghz: f64,
    /// ACT-to-RD/WR delay (row to column command delay).
    pub trcd: u64,
    /// PRE-to-ACT delay (row precharge time).
    pub trp: u64,
    /// Minimum ACT-to-PRE delay (row active time).
    pub tras: u64,
    /// Column access latency (CAS latency).
    pub cl: u64,
    /// Write recovery time (last write data to PRE).
    pub twr: u64,
    /// Average refresh command interval.
    pub trefi: u64,
    /// Refresh cycle time (duration of one REF command).
    pub trfc: u64,
    /// Refresh window — time in which every row is refreshed once.
    /// RowHammer activation counters reset on this period (Tref in the
    /// paper, 64 ms for DDR4 at normal temperature).
    pub trefw: u64,
    /// Four-activate window.
    pub tfaw: u64,
    /// ACT-to-ACT delay, different banks.
    pub trrd: u64,
    /// Column-to-column delay.
    pub tccd: u64,
    /// Extra cycles for the second ACT of a RowClone AAP pair
    /// (back-to-back ACT without PRE; RowClone completes in < 100 ns).
    pub taap: u64,
}

impl TimingParams {
    /// DDR3-1600 timing (800 MHz clock).
    pub fn ddr3_1600() -> Self {
        Self {
            clock_ghz: 0.8,
            trcd: 11,
            trp: 11,
            tras: 28,
            cl: 11,
            twr: 12,
            trefi: 6240,
            trfc: 208,
            trefw: 51_200_000, // 64 ms at 0.8 GHz
            tfaw: 24,
            trrd: 5,
            tccd: 4,
            taap: 4,
        }
    }

    /// DDR4-2400 timing (1.2 GHz clock). The paper's evaluation target.
    pub fn ddr4_2400() -> Self {
        Self {
            clock_ghz: 1.2,
            trcd: 16,
            trp: 16,
            tras: 39,
            cl: 16,
            twr: 18,
            trefi: 9360,
            trfc: 420,
            trefw: 76_800_000, // 64 ms at 1.2 GHz
            tfaw: 26,
            trrd: 6,
            tccd: 4,
            taap: 6,
        }
    }

    /// LPDDR4-3200 timing (1.6 GHz clock).
    pub fn lpddr4_3200() -> Self {
        Self {
            clock_ghz: 1.6,
            trcd: 29,
            trp: 29,
            tras: 67,
            cl: 28,
            twr: 32,
            trefi: 6248,
            trfc: 448,
            trefw: 51_200_000, // 32 ms at 1.6 GHz (LPDDR4 refreshes faster)
            tfaw: 64,
            trrd: 16,
            tccd: 8,
            taap: 8,
        }
    }

    /// The canonical DDR4 datasheet preset (DDR4-2400, 1.2 GHz clock).
    ///
    /// Constants follow JEDEC JESD79-4B speed bin DDR4-2400R and the
    /// Micron MT40A1G8 (8 Gb, x8) datasheet: tRCD = tRP = 13.32 ns
    /// (16 cycles), tRAS = 32 ns (39), CL = 16, tWR = 15 ns (18),
    /// tREFI = 7.8 µs (9360), tRFC = 350 ns (420), tREFW = 64 ms,
    /// tFAW = 21 ns (26), tRRD_L = 4.9 ns (6), tCCD_L = 4.
    pub fn ddr4() -> Self {
        Self::ddr4_2400()
    }

    /// The canonical LPDDR4 datasheet preset (LPDDR4-3200, 1.6 GHz
    /// clock).
    ///
    /// Constants follow JEDEC JESD209-4B and the Micron MT53B (8 Gb
    /// per channel) datasheet: tRCD = 18 ns (29 cycles), tRPpb = 18 ns
    /// (29), tRAS = 42 ns (67), RL = 28, tWR = 20 ns (32), tREFI ≈
    /// 3.9 µs (6248), tRFCab = 280 ns (448), tREFW = 32 ms (LPDDR4
    /// refreshes a bank group twice as often as DDR4 at standard
    /// temperature), tFAW = 40 ns (64), tRRD = 10 ns (16), tCCD = 8.
    pub fn lpddr4() -> Self {
        Self::lpddr4_3200()
    }

    /// Nanoseconds per clock cycle.
    pub fn cycle_ns(&self) -> f64 {
        1.0 / self.clock_ghz
    }

    /// Converts a cycle count to nanoseconds.
    pub fn cycles_to_ns(&self, cycles: u64) -> f64 {
        cycles as f64 * self.cycle_ns()
    }

    /// Converts a cycle count to seconds.
    pub fn cycles_to_s(&self, cycles: u64) -> f64 {
        self.cycles_to_ns(cycles) * 1e-9
    }

    /// Row cycle time tRC = tRAS + tRP: the minimum period between two
    /// ACTs to the same bank, i.e. the cost of one hammer iteration.
    pub fn row_cycle(&self) -> u64 {
        self.tras + self.trp
    }

    /// Latency in cycles of a full RowClone copy (ACT–ACT–PRE): the
    /// source activate, the back-to-back destination activate, then a
    /// precharge. Completes in well under 100 ns on DDR4, matching the
    /// RowClone paper.
    pub fn rowclone_cycles(&self) -> u64 {
        self.tras + self.taap + self.trp
    }

    /// Number of hammer (ACT+PRE) iterations that fit in one refresh
    /// window — the upper bound on what an attacker can do per window.
    pub fn hammers_per_window(&self) -> u64 {
        self.trefw / self.row_cycle()
    }
}

impl Default for TimingParams {
    fn default() -> Self {
        Self::ddr4_2400()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rowclone_under_100ns_on_ddr4() {
        let t = TimingParams::ddr4_2400();
        assert!(t.cycles_to_ns(t.rowclone_cycles()) < 100.0);
    }

    #[test]
    fn refresh_window_is_64ms_on_ddr4() {
        let t = TimingParams::ddr4_2400();
        let ms = t.cycles_to_s(t.trefw) * 1e3;
        assert!((ms - 64.0).abs() < 0.1, "got {ms} ms");
    }

    #[test]
    fn hammers_per_window_exceeds_ddr4_trh() {
        // An attacker must be able to exceed DDR4 (new) TRH = 10k within
        // one refresh window, otherwise RowHammer would be impossible.
        let t = TimingParams::ddr4_2400();
        assert!(t.hammers_per_window() > 10_000);
    }

    #[test]
    fn presets_are_distinct() {
        assert_ne!(TimingParams::ddr3_1600(), TimingParams::ddr4_2400());
        assert_ne!(TimingParams::ddr4_2400(), TimingParams::lpddr4_3200());
    }

    #[test]
    fn datasheet_presets_match_their_speed_grades() {
        assert_eq!(TimingParams::ddr4(), TimingParams::ddr4_2400());
        assert_eq!(TimingParams::lpddr4(), TimingParams::lpddr4_3200());
        // The cited nanosecond values survive the cycle conversion.
        let d = TimingParams::ddr4();
        assert!((d.cycles_to_ns(d.trcd) - 13.32).abs() < 0.02);
        assert!((d.cycles_to_ns(d.trfc) - 350.0).abs() < 1.0);
        let l = TimingParams::lpddr4();
        assert!((l.cycles_to_ns(l.trcd) - 18.0).abs() < 0.2);
        // LPDDR4 halves the refresh window (32 ms vs DDR4's 64 ms).
        assert!((l.cycles_to_s(l.trefw) * 1e3 - 32.0).abs() < 0.1);
    }

    #[test]
    fn cycle_conversions_are_consistent() {
        let t = TimingParams::ddr4_2400();
        let ns = t.cycles_to_ns(1200);
        assert!((ns - 1000.0).abs() < 1e-9); // 1200 cycles at 1.2 GHz = 1 µs
        assert!((t.cycles_to_s(1200) - 1e-6).abs() < 1e-15);
    }
}
