//! Error type for DRAM device operations.

use std::error::Error;
use std::fmt;

use crate::geometry::RowAddr;

/// Errors returned by DRAM device operations.
///
/// Commands that violate the bank state machine (for example a `RD` to a
/// precharged bank) or reference rows outside the configured geometry are
/// rejected with one of these variants rather than silently mis-executing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DramError {
    /// The row address does not exist in the configured geometry.
    InvalidRow(RowAddr),
    /// The bank index exceeds the configured bank count.
    InvalidBank(u16),
    /// A column access referenced a byte offset beyond the row size.
    InvalidColumn {
        /// Offending column (byte offset within the row).
        col: usize,
        /// Row size in bytes.
        row_bytes: usize,
    },
    /// The command is illegal in the bank's current state, e.g. `RD`
    /// while the bank is precharged or `ACT` while a row is already open.
    IllegalCommand {
        /// Human-readable description of the violation.
        detail: String,
    },
    /// A RowClone was requested across subarrays in Fast-Parallel-Mode,
    /// which only works within a single subarray.
    CrossSubarrayClone {
        /// Source row.
        src: RowAddr,
        /// Destination row.
        dst: RowAddr,
    },
    /// Data buffer length does not match the row size.
    DataSizeMismatch {
        /// Provided buffer length.
        got: usize,
        /// Required row size in bytes.
        expected: usize,
    },
}

impl fmt::Display for DramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DramError::InvalidRow(addr) => write!(f, "row address out of range: {addr}"),
            DramError::InvalidBank(bank) => write!(f, "bank index out of range: {bank}"),
            DramError::InvalidColumn { col, row_bytes } => {
                write!(f, "column {col} out of range for row of {row_bytes} bytes")
            }
            DramError::IllegalCommand { detail } => {
                write!(f, "illegal command for bank state: {detail}")
            }
            DramError::CrossSubarrayClone { src, dst } => write!(
                f,
                "fast-parallel-mode rowclone requires same subarray (src {src}, dst {dst})"
            ),
            DramError::DataSizeMismatch { got, expected } => {
                write!(f, "data size mismatch: got {got} bytes, expected {expected}")
            }
        }
    }
}

impl Error for DramError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let err = DramError::InvalidBank(99);
        let text = err.to_string();
        assert!(text.contains("99"));
        assert!(text.starts_with(char::is_lowercase));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DramError>();
    }

    #[test]
    fn data_size_mismatch_mentions_both_sizes() {
        let err = DramError::DataSizeMismatch { got: 4, expected: 8192 };
        let text = err.to_string();
        assert!(text.contains('4') && text.contains("8192"));
    }
}
