//! DRAM geometry: banks, subarrays, rows, columns and typed addresses.
//!
//! The paper's evaluation uses a 32 GB, 16-bank DDR4 configuration; the
//! defaults here are a scaled-down (but structurally identical) device so
//! that simulations run comfortably in memory. All sizes are configurable.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a bank within a DRAM device.
pub type BankId = u16;
/// Identifier of a subarray within a bank.
pub type SubarrayId = u16;

/// A flat, device-global row identifier.
///
/// `RowId` is a dense index over `(bank, subarray, row)` suitable for use
/// as a hash key in trackers and lock tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RowId(pub u64);

impl fmt::Display for RowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "row#{}", self.0)
    }
}

/// A structured row address: `(bank, subarray, row-within-subarray)`.
///
/// # Example
///
/// ```
/// use dlk_dram::RowAddr;
/// let addr = RowAddr::new(1, 2, 100);
/// assert_eq!(addr.bank, 1);
/// assert_eq!(addr.subarray, 2);
/// assert_eq!(addr.row, 100);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RowAddr {
    /// Bank index.
    pub bank: BankId,
    /// Subarray index within the bank.
    pub subarray: SubarrayId,
    /// Row index within the subarray.
    pub row: u32,
}

impl RowAddr {
    /// Creates a new row address.
    pub fn new(bank: BankId, subarray: SubarrayId, row: u32) -> Self {
        Self { bank, subarray, row }
    }

    /// Returns the address of the row physically adjacent at `offset`
    /// (e.g. `-1` / `+1` for the two RowHammer victim rows), or `None` if
    /// it would fall outside the subarray.
    ///
    /// Disturbance does not propagate across subarray boundaries because
    /// each subarray has its own sense-amplifier stripe isolating it.
    pub fn neighbor(&self, offset: i64, geometry: &DramGeometry) -> Option<RowAddr> {
        let row = self.row as i64 + offset;
        if row < 0 || row >= geometry.rows_per_subarray as i64 {
            None
        } else {
            Some(RowAddr::new(self.bank, self.subarray, row as u32))
        }
    }
}

impl fmt::Display for RowAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}.s{}.r{}", self.bank, self.subarray, self.row)
    }
}

/// Physical organization of a DRAM device.
///
/// # Example
///
/// ```
/// use dlk_dram::DramGeometry;
/// let geom = DramGeometry::default();
/// assert!(geom.total_rows() > 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DramGeometry {
    /// Number of banks in the device.
    pub banks: u16,
    /// Number of subarrays per bank.
    pub subarrays_per_bank: u16,
    /// Number of rows per subarray.
    pub rows_per_subarray: u32,
    /// Row size in bytes (the amount latched into the row buffer).
    pub row_bytes: usize,
}

impl DramGeometry {
    /// A small geometry convenient for unit tests: 2 banks, 2 subarrays,
    /// 64 rows of 64 bytes.
    pub fn tiny() -> Self {
        Self { banks: 2, subarrays_per_bank: 2, rows_per_subarray: 64, row_bytes: 64 }
    }

    /// The paper's evaluation configuration, scaled: 16 banks,
    /// 32 subarrays per bank, 512 rows per subarray, 8 KiB rows.
    ///
    /// A real 32 GB DDR4 module has 2^17 rows per bank; we keep the
    /// bank/subarray structure and scale row count so that functional
    /// simulation stays laptop-sized. Overhead arithmetic for Table I
    /// uses the *full* 32 GB parameters (see `dlk-defenses::overhead`).
    pub fn paper_scaled() -> Self {
        Self { banks: 16, subarrays_per_bank: 32, rows_per_subarray: 512, row_bytes: 8192 }
    }

    /// Rows per bank across all subarrays.
    pub fn rows_per_bank(&self) -> u64 {
        self.subarrays_per_bank as u64 * self.rows_per_subarray as u64
    }

    /// Total number of rows in the device.
    pub fn total_rows(&self) -> u64 {
        self.banks as u64 * self.rows_per_bank()
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.total_rows() * self.row_bytes as u64
    }

    /// Returns `true` if `addr` lies within this geometry.
    pub fn contains(&self, addr: RowAddr) -> bool {
        addr.bank < self.banks
            && addr.subarray < self.subarrays_per_bank
            && addr.row < self.rows_per_subarray
    }

    /// Flattens a structured address into a device-global [`RowId`].
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `addr` is outside the geometry; use
    /// [`DramGeometry::contains`] to validate first.
    pub fn row_id(&self, addr: RowAddr) -> RowId {
        debug_assert!(self.contains(addr), "address {addr} outside geometry");
        let per_bank = self.rows_per_bank();
        RowId(
            addr.bank as u64 * per_bank
                + addr.subarray as u64 * self.rows_per_subarray as u64
                + addr.row as u64,
        )
    }

    /// Expands a flat [`RowId`] back into a structured address.
    ///
    /// Returns `None` if the id is outside the geometry.
    pub fn row_addr(&self, id: RowId) -> Option<RowAddr> {
        if id.0 >= self.total_rows() {
            return None;
        }
        let per_bank = self.rows_per_bank();
        let bank = (id.0 / per_bank) as u16;
        let rem = id.0 % per_bank;
        let subarray = (rem / self.rows_per_subarray as u64) as u16;
        let row = (rem % self.rows_per_subarray as u64) as u32;
        Some(RowAddr::new(bank, subarray, row))
    }
}

impl Default for DramGeometry {
    /// A mid-sized geometry: 8 banks, 8 subarrays, 256 rows, 2 KiB rows.
    fn default() -> Self {
        Self { banks: 8, subarrays_per_bank: 8, rows_per_subarray: 256, row_bytes: 2048 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_id_roundtrip() {
        let geom = DramGeometry::default();
        let addr = RowAddr::new(3, 5, 100);
        let id = geom.row_id(addr);
        assert_eq!(geom.row_addr(id), Some(addr));
    }

    #[test]
    fn row_id_dense_and_unique() {
        let geom = DramGeometry::tiny();
        let mut seen = std::collections::HashSet::new();
        for bank in 0..geom.banks {
            for sa in 0..geom.subarrays_per_bank {
                for row in 0..geom.rows_per_subarray {
                    let id = geom.row_id(RowAddr::new(bank, sa, row));
                    assert!(id.0 < geom.total_rows());
                    assert!(seen.insert(id), "duplicate id {id}");
                }
            }
        }
        assert_eq!(seen.len() as u64, geom.total_rows());
    }

    #[test]
    fn out_of_range_id_rejected() {
        let geom = DramGeometry::tiny();
        assert_eq!(geom.row_addr(RowId(geom.total_rows())), None);
    }

    #[test]
    fn neighbor_respects_subarray_bounds() {
        let geom = DramGeometry::tiny();
        let first = RowAddr::new(0, 0, 0);
        assert_eq!(first.neighbor(-1, &geom), None);
        assert_eq!(first.neighbor(1, &geom), Some(RowAddr::new(0, 0, 1)));
        let last = RowAddr::new(0, 0, geom.rows_per_subarray - 1);
        assert_eq!(last.neighbor(1, &geom), None);
        assert_eq!(last.neighbor(-2, &geom), Some(RowAddr::new(0, 0, geom.rows_per_subarray - 3)));
    }

    #[test]
    fn contains_validates_every_field() {
        let geom = DramGeometry::tiny();
        assert!(geom.contains(RowAddr::new(0, 0, 0)));
        assert!(!geom.contains(RowAddr::new(geom.banks, 0, 0)));
        assert!(!geom.contains(RowAddr::new(0, geom.subarrays_per_bank, 0)));
        assert!(!geom.contains(RowAddr::new(0, 0, geom.rows_per_subarray)));
    }

    #[test]
    fn capacity_matches_product() {
        let geom = DramGeometry::paper_scaled();
        assert_eq!(geom.capacity_bytes(), 16u64 * 32 * 512 * 8192,);
    }

    #[test]
    fn display_formats() {
        let addr = RowAddr::new(1, 2, 3);
        assert_eq!(addr.to_string(), "b1.s2.r3");
        assert_eq!(RowId(7).to_string(), "row#7");
    }
}
