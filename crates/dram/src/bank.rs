//! Bank state machine.
//!
//! Each bank is either precharged (`Idle`) or has one row latched in its
//! row buffer (`Active`). The state machine enforces legal command
//! ordering: `ACT` only from `Idle`, `RD`/`WR`/`PRE` only from `Active`.
//! Timing is tracked with a `busy_until` cycle per bank.

use serde::{Deserialize, Serialize};

use crate::error::DramError;
use crate::geometry::RowAddr;
use crate::timing::TimingParams;

/// The activation state of one bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BankState {
    /// All rows closed; bit-lines precharged to VDD/2.
    Idle,
    /// A row is open in the row buffer.
    Active {
        /// The open row (subarray-local address within this bank).
        open_row: RowAddr,
    },
}

/// One DRAM bank: state machine plus availability bookkeeping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Bank {
    state: BankState,
    busy_until: u64,
    /// Earliest cycle at which a precharge may follow the last activate
    /// (enforces tRAS).
    pre_allowed_at: u64,
}

impl Bank {
    /// Creates an idle bank available at cycle 0.
    pub fn new() -> Self {
        Self { state: BankState::Idle, busy_until: 0, pre_allowed_at: 0 }
    }

    /// Current state.
    pub fn state(&self) -> BankState {
        self.state
    }

    /// The open row, if any.
    pub fn open_row(&self) -> Option<RowAddr> {
        match self.state {
            BankState::Idle => None,
            BankState::Active { open_row } => Some(open_row),
        }
    }

    /// Cycle at which the bank can accept its next command.
    pub fn busy_until(&self) -> u64 {
        self.busy_until
    }

    /// Activates `row` starting no earlier than `now`.
    ///
    /// Returns `(start, done)` cycles: the command begins at
    /// `max(now, busy_until)` and the bank accepts column commands tRCD
    /// later.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::IllegalCommand`] if a row is already open.
    pub fn activate(
        &mut self,
        row: RowAddr,
        now: u64,
        timing: &TimingParams,
    ) -> Result<(u64, u64), DramError> {
        if let BankState::Active { open_row } = self.state {
            return Err(DramError::IllegalCommand {
                detail: format!("ACT {row} while {open_row} is open"),
            });
        }
        let start = now.max(self.busy_until);
        let done = start + timing.trcd;
        self.state = BankState::Active { open_row: row };
        self.busy_until = done;
        self.pre_allowed_at = start + timing.tras;
        Ok((start, done))
    }

    /// Precharges the bank starting no earlier than `now`, honouring tRAS.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::IllegalCommand`] if the bank is already idle.
    pub fn precharge(&mut self, now: u64, timing: &TimingParams) -> Result<(u64, u64), DramError> {
        if self.state == BankState::Idle {
            return Err(DramError::IllegalCommand { detail: "PRE on idle bank".to_owned() });
        }
        let start = now.max(self.busy_until).max(self.pre_allowed_at);
        let done = start + timing.trp;
        self.state = BankState::Idle;
        self.busy_until = done;
        Ok((start, done))
    }

    /// Performs a column read on the open row.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::IllegalCommand`] if no row is open.
    pub fn read(&mut self, now: u64, timing: &TimingParams) -> Result<(u64, u64), DramError> {
        self.column_access(now, timing.cl, timing.tccd, "RD")
    }

    /// Performs a column write on the open row.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::IllegalCommand`] if no row is open.
    pub fn write(&mut self, now: u64, timing: &TimingParams) -> Result<(u64, u64), DramError> {
        self.column_access(now, timing.twr, timing.tccd, "WR")
    }

    fn column_access(
        &mut self,
        now: u64,
        latency: u64,
        tccd: u64,
        what: &str,
    ) -> Result<(u64, u64), DramError> {
        if self.state == BankState::Idle {
            return Err(DramError::IllegalCommand { detail: format!("{what} on idle bank") });
        }
        let start = now.max(self.busy_until);
        let done = start + latency;
        // The bank can pipeline column commands every tCCD, so it frees
        // earlier than the data is returned.
        self.busy_until = start + tccd;
        Ok((start, done))
    }

    /// Second half of a RowClone AAP: re-activate `dst` while the source
    /// row's contents still drive the sense amplifiers. Legal only from
    /// `Active` (the first ACT of the pair opened the source row).
    ///
    /// # Errors
    ///
    /// Returns [`DramError::IllegalCommand`] if the bank is idle.
    pub fn aap_second_act(
        &mut self,
        dst: RowAddr,
        now: u64,
        timing: &TimingParams,
    ) -> Result<(u64, u64), DramError> {
        if self.state == BankState::Idle {
            return Err(DramError::IllegalCommand {
                detail: "AAP second ACT on idle bank".to_owned(),
            });
        }
        let start = now.max(self.busy_until);
        let done = start + timing.taap;
        self.state = BankState::Active { open_row: dst };
        self.busy_until = done;
        self.pre_allowed_at = self.pre_allowed_at.max(start + timing.taap);
        Ok((start, done))
    }

    /// Forces the bank idle (used by refresh).
    pub fn force_idle(&mut self, available_at: u64) {
        self.state = BankState::Idle;
        self.busy_until = self.busy_until.max(available_at);
        self.pre_allowed_at = 0;
    }
}

impl Default for Bank {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing() -> TimingParams {
        TimingParams::ddr4_2400()
    }

    #[test]
    fn act_then_read_then_pre() {
        let t = timing();
        let mut bank = Bank::new();
        let row = RowAddr::new(0, 0, 5);
        let (s0, d0) = bank.activate(row, 0, &t).unwrap();
        assert_eq!((s0, d0), (0, t.trcd));
        assert_eq!(bank.open_row(), Some(row));
        let (s1, _) = bank.read(0, &t).unwrap();
        assert_eq!(s1, t.trcd); // stalled until ACT completes
        let (s2, d2) = bank.precharge(0, &t).unwrap();
        assert!(s2 >= t.tras, "PRE must honour tRAS, started at {s2}");
        assert_eq!(d2, s2 + t.trp);
        assert_eq!(bank.state(), BankState::Idle);
    }

    #[test]
    fn double_activate_rejected() {
        let t = timing();
        let mut bank = Bank::new();
        bank.activate(RowAddr::new(0, 0, 1), 0, &t).unwrap();
        let err = bank.activate(RowAddr::new(0, 0, 2), 100, &t).unwrap_err();
        assert!(matches!(err, DramError::IllegalCommand { .. }));
    }

    #[test]
    fn read_on_idle_bank_rejected() {
        let t = timing();
        let mut bank = Bank::new();
        assert!(bank.read(0, &t).is_err());
        assert!(bank.write(0, &t).is_err());
        assert!(bank.precharge(0, &t).is_err());
    }

    #[test]
    fn hammer_iteration_costs_trc() {
        // One ACT+PRE pair takes exactly tRAS + tRP when issued
        // back-to-back — the cost of one hammer.
        let t = timing();
        let mut bank = Bank::new();
        let row = RowAddr::new(0, 0, 0);
        bank.activate(row, 0, &t).unwrap();
        let (_, done) = bank.precharge(0, &t).unwrap();
        assert_eq!(done, t.row_cycle());
    }

    #[test]
    fn aap_switches_open_row() {
        let t = timing();
        let mut bank = Bank::new();
        let src = RowAddr::new(0, 0, 1);
        let dst = RowAddr::new(0, 0, 2);
        bank.activate(src, 0, &t).unwrap();
        bank.aap_second_act(dst, 0, &t).unwrap();
        assert_eq!(bank.open_row(), Some(dst));
    }

    #[test]
    fn force_idle_resets_state() {
        let t = timing();
        let mut bank = Bank::new();
        bank.activate(RowAddr::new(0, 0, 1), 0, &t).unwrap();
        bank.force_idle(1000);
        assert_eq!(bank.state(), BankState::Idle);
        assert!(bank.busy_until() >= 1000);
    }

    #[test]
    fn column_commands_pipeline_at_tccd() {
        let t = timing();
        let mut bank = Bank::new();
        bank.activate(RowAddr::new(0, 0, 0), 0, &t).unwrap();
        let (s1, _) = bank.read(0, &t).unwrap();
        let (s2, _) = bank.read(0, &t).unwrap();
        assert_eq!(s2 - s1, t.tccd);
    }
}
