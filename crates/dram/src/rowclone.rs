//! RowClone: fast in-DRAM bulk row copy.
//!
//! Two modes, following Seshadri et al. (MICRO 2013):
//!
//! - **FPM** (Fast Parallel Mode): source and destination share a
//!   subarray; two back-to-back ACTs copy the row through the sense
//!   amplifiers in under 100 ns.
//! - **PSM** (Pipelined Serial Mode): rows in different subarrays or
//!   banks; data moves over the internal bus one cache line at a time —
//!   still avoiding the memory channel, but much slower than FPM.
//!
//! The engine plans a copy and reports its latency/energy, which the
//! DRAM-Locker SWAP engine uses to cost its three-copy unlock sequence.

use serde::{Deserialize, Serialize};

use crate::geometry::RowAddr;
use crate::stats::EnergyModel;
use crate::timing::TimingParams;

/// How a row copy will be executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CloneMode {
    /// Intra-subarray copy via back-to-back activation.
    Fpm,
    /// Inter-subarray/inter-bank copy over the internal bus.
    Psm,
}

/// Plans row copies and reports their costs.
///
/// # Example
///
/// ```
/// use dlk_dram::{RowCloneEngine, RowAddr, CloneMode};
/// use dlk_dram::{TimingParams, EnergyModel};
///
/// let engine = RowCloneEngine::new(TimingParams::ddr4_2400(), EnergyModel::default(), 8192);
/// let src = RowAddr::new(0, 3, 10);
/// let dst = RowAddr::new(0, 3, 11);
/// assert_eq!(engine.mode(src, dst), CloneMode::Fpm);
/// assert!(engine.latency_cycles(CloneMode::Fpm) < engine.latency_cycles(CloneMode::Psm));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RowCloneEngine {
    timing: TimingParams,
    energy: EnergyModel,
    row_bytes: usize,
    /// Internal bus width for PSM transfers, bytes per beat.
    psm_beat_bytes: usize,
}

impl RowCloneEngine {
    /// Creates an engine for the given timing/energy model and row size.
    pub fn new(timing: TimingParams, energy: EnergyModel, row_bytes: usize) -> Self {
        Self { timing, energy, row_bytes, psm_beat_bytes: 64 }
    }

    /// Chooses the copy mode for a source/destination pair.
    pub fn mode(&self, src: RowAddr, dst: RowAddr) -> CloneMode {
        if src.bank == dst.bank && src.subarray == dst.subarray {
            CloneMode::Fpm
        } else {
            CloneMode::Psm
        }
    }

    /// Latency of one full row copy in cycles.
    pub fn latency_cycles(&self, mode: CloneMode) -> u64 {
        match mode {
            CloneMode::Fpm => self.timing.rowclone_cycles(),
            CloneMode::Psm => {
                // ACT src, stream beats, ACT dst, stream beats, PREs.
                let beats = (self.row_bytes.div_ceil(self.psm_beat_bytes)) as u64;
                2 * (self.timing.trcd + self.timing.trp) + beats * self.timing.tccd * 2
            }
        }
    }

    /// Latency in nanoseconds.
    pub fn latency_ns(&self, mode: CloneMode) -> f64 {
        self.timing.cycles_to_ns(self.latency_cycles(mode))
    }

    /// Energy of one full row copy in picojoules.
    pub fn energy_pj(&self, mode: CloneMode) -> f64 {
        match mode {
            CloneMode::Fpm => self.energy.aap_pj,
            CloneMode::Psm => {
                let beats = (self.row_bytes.div_ceil(self.psm_beat_bytes)) as f64;
                2.0 * (self.energy.act_pj + self.energy.pre_pj)
                    + beats * 0.5 * (self.energy.rd_pj + self.energy.wr_pj)
            }
        }
    }

    /// Latency of copying the row over the memory channel (the non-
    /// RowClone baseline a conventional memcpy would pay).
    pub fn channel_copy_cycles(&self) -> u64 {
        let beats = (self.row_bytes.div_ceil(self.psm_beat_bytes)) as u64;
        // Read the row out and write it back: two row cycles plus a CAS
        // per beat in each direction over the external bus.
        2 * self.timing.row_cycle() + beats * (self.timing.cl + self.timing.twr)
    }

    /// Speedup of FPM RowClone over a channel copy (the paper cites
    /// 11.6x latency reduction).
    pub fn fpm_speedup(&self) -> f64 {
        self.channel_copy_cycles() as f64 / self.latency_cycles(CloneMode::Fpm) as f64
    }

    /// Energy advantage of FPM RowClone over a channel copy (the paper
    /// cites 74.4x).
    pub fn fpm_energy_advantage(&self) -> f64 {
        self.energy.channel_copy_pj(self.row_bytes, self.psm_beat_bytes)
            / self.energy_pj(CloneMode::Fpm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> RowCloneEngine {
        RowCloneEngine::new(TimingParams::ddr4_2400(), EnergyModel::default(), 8192)
    }

    #[test]
    fn mode_selection() {
        let e = engine();
        assert_eq!(e.mode(RowAddr::new(0, 1, 2), RowAddr::new(0, 1, 9)), CloneMode::Fpm);
        assert_eq!(e.mode(RowAddr::new(0, 1, 2), RowAddr::new(0, 2, 2)), CloneMode::Psm);
        assert_eq!(e.mode(RowAddr::new(0, 1, 2), RowAddr::new(1, 1, 2)), CloneMode::Psm);
    }

    #[test]
    fn fpm_completes_under_100ns() {
        assert!(engine().latency_ns(CloneMode::Fpm) < 100.0);
    }

    #[test]
    fn psm_slower_than_fpm_but_faster_than_channel() {
        let e = engine();
        let fpm = e.latency_cycles(CloneMode::Fpm);
        let psm = e.latency_cycles(CloneMode::Psm);
        let channel = e.channel_copy_cycles();
        assert!(fpm < psm, "fpm {fpm} < psm {psm}");
        assert!(psm < channel, "psm {psm} < channel {channel}");
    }

    #[test]
    fn speedups_in_published_ballpark() {
        let e = engine();
        // RowClone paper: 11.6x latency, 74.4x energy for 8 KiB rows.
        let speedup = e.fpm_speedup();
        let energy = e.fpm_energy_advantage();
        assert!(speedup > 5.0, "latency speedup {speedup:.1}");
        assert!(energy > 40.0, "energy advantage {energy:.1}");
    }

    #[test]
    fn psm_energy_exceeds_fpm() {
        let e = engine();
        assert!(e.energy_pj(CloneMode::Psm) > e.energy_pj(CloneMode::Fpm));
    }
}
