//! Subarray row storage.
//!
//! A subarray owns its rows' contents. Rows are allocated lazily (an
//! untouched row reads as all-zero) so that large geometries stay cheap
//! to simulate. Bit indexing is little-endian within each byte: bit `i`
//! of the row lives in byte `i / 8`, bit position `i % 8`.

use std::collections::HashMap;

use crate::error::DramError;

/// Functional storage for one subarray's rows.
#[derive(Debug, Clone, Default)]
pub struct Subarray {
    rows: HashMap<u32, Vec<u8>>,
    row_bytes: usize,
}

impl Subarray {
    /// Creates an empty subarray whose rows hold `row_bytes` bytes.
    pub fn new(row_bytes: usize) -> Self {
        Self { rows: HashMap::new(), row_bytes }
    }

    /// Row size in bytes.
    pub fn row_bytes(&self) -> usize {
        self.row_bytes
    }

    /// Number of rows that have been materialized (written at least once).
    pub fn materialized_rows(&self) -> usize {
        self.rows.len()
    }

    /// Reads a full row. Untouched rows read as zeros.
    pub fn read(&self, row: u32) -> Vec<u8> {
        self.rows.get(&row).cloned().unwrap_or_else(|| vec![0; self.row_bytes])
    }

    /// Returns a reference to the row's bytes if it has been materialized.
    pub fn peek(&self, row: u32) -> Option<&[u8]> {
        self.rows.get(&row).map(Vec::as_slice)
    }

    /// Overwrites a full row.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::DataSizeMismatch`] if `data` is not exactly
    /// one row long.
    pub fn write(&mut self, row: u32, data: &[u8]) -> Result<(), DramError> {
        if data.len() != self.row_bytes {
            return Err(DramError::DataSizeMismatch { got: data.len(), expected: self.row_bytes });
        }
        self.rows.insert(row, data.to_vec());
        Ok(())
    }

    /// Reads `len` bytes starting at byte offset `col`.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::InvalidColumn`] if the range exceeds the row.
    pub fn read_bytes(&self, row: u32, col: usize, len: usize) -> Result<Vec<u8>, DramError> {
        if col + len > self.row_bytes {
            return Err(DramError::InvalidColumn { col: col + len, row_bytes: self.row_bytes });
        }
        Ok(match self.rows.get(&row) {
            Some(data) => data[col..col + len].to_vec(),
            None => vec![0; len],
        })
    }

    /// Writes bytes starting at byte offset `col`, materializing the row.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::InvalidColumn`] if the range exceeds the row.
    pub fn write_bytes(&mut self, row: u32, col: usize, bytes: &[u8]) -> Result<(), DramError> {
        if col + bytes.len() > self.row_bytes {
            return Err(DramError::InvalidColumn {
                col: col + bytes.len(),
                row_bytes: self.row_bytes,
            });
        }
        let row_data = self.rows.entry(row).or_insert_with(|| vec![0; self.row_bytes]);
        row_data[col..col + bytes.len()].copy_from_slice(bytes);
        Ok(())
    }

    /// Flips one bit of a row (RowHammer disturbance). Returns the new
    /// value of the bit.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::InvalidColumn`] if `bit` exceeds the row.
    pub fn flip_bit(&mut self, row: u32, bit: usize) -> Result<bool, DramError> {
        if bit >= self.row_bytes * 8 {
            return Err(DramError::InvalidColumn { col: bit / 8, row_bytes: self.row_bytes });
        }
        let row_data = self.rows.entry(row).or_insert_with(|| vec![0; self.row_bytes]);
        let byte = bit / 8;
        let mask = 1u8 << (bit % 8);
        row_data[byte] ^= mask;
        Ok(row_data[byte] & mask != 0)
    }

    /// Reads one bit of a row.
    pub fn read_bit(&self, row: u32, bit: usize) -> Result<bool, DramError> {
        if bit >= self.row_bytes * 8 {
            return Err(DramError::InvalidColumn { col: bit / 8, row_bytes: self.row_bytes });
        }
        Ok(self.rows.get(&row).map(|data| data[bit / 8] & (1 << (bit % 8)) != 0).unwrap_or(false))
    }

    /// Copies row `src` over row `dst` (the functional effect of a
    /// RowClone AAP within this subarray).
    pub fn copy_row(&mut self, src: u32, dst: u32) {
        let data = self.read(src);
        self.rows.insert(dst, data);
    }

    /// Swaps the contents of two rows (three copies through a buffer in
    /// hardware; a plain swap functionally).
    pub fn swap_rows(&mut self, a: u32, b: u32) {
        let da = self.read(a);
        let db = self.read(b);
        self.rows.insert(a, db);
        self.rows.insert(b, da);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn subarray() -> Subarray {
        Subarray::new(16)
    }

    #[test]
    fn untouched_rows_read_zero() {
        let sa = subarray();
        assert_eq!(sa.read(5), vec![0; 16]);
        assert_eq!(sa.materialized_rows(), 0);
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut sa = subarray();
        let data: Vec<u8> = (0..16).collect();
        sa.write(3, &data).unwrap();
        assert_eq!(sa.read(3), data);
        assert_eq!(sa.materialized_rows(), 1);
    }

    #[test]
    fn write_wrong_size_rejected() {
        let mut sa = subarray();
        let err = sa.write(0, &[1, 2, 3]).unwrap_err();
        assert_eq!(err, DramError::DataSizeMismatch { got: 3, expected: 16 });
    }

    #[test]
    fn partial_read_write() {
        let mut sa = subarray();
        sa.write_bytes(1, 4, &[0xAA, 0xBB]).unwrap();
        assert_eq!(sa.read_bytes(1, 4, 2).unwrap(), vec![0xAA, 0xBB]);
        assert_eq!(sa.read_bytes(1, 0, 4).unwrap(), vec![0; 4]);
        assert!(sa.read_bytes(1, 15, 2).is_err());
        assert!(sa.write_bytes(1, 15, &[0, 0]).is_err());
    }

    #[test]
    fn flip_bit_toggles() {
        let mut sa = subarray();
        assert!(sa.flip_bit(0, 9).unwrap()); // 0 -> 1
        assert!(sa.read_bit(0, 9).unwrap());
        assert!(!sa.flip_bit(0, 9).unwrap()); // 1 -> 0
        assert!(!sa.read_bit(0, 9).unwrap());
        assert!(sa.flip_bit(0, 16 * 8).is_err());
    }

    #[test]
    fn copy_row_duplicates_contents() {
        let mut sa = subarray();
        sa.write(0, &[7u8; 16]).unwrap();
        sa.copy_row(0, 9);
        assert_eq!(sa.read(9), vec![7u8; 16]);
        // Source unchanged.
        assert_eq!(sa.read(0), vec![7u8; 16]);
    }

    #[test]
    fn swap_rows_exchanges_contents() {
        let mut sa = subarray();
        sa.write(0, &[1u8; 16]).unwrap();
        sa.write(1, &[2u8; 16]).unwrap();
        sa.swap_rows(0, 1);
        assert_eq!(sa.read(0), vec![2u8; 16]);
        assert_eq!(sa.read(1), vec![1u8; 16]);
    }

    #[test]
    fn swap_with_unmaterialized_row_zeroes() {
        let mut sa = subarray();
        sa.write(0, &[1u8; 16]).unwrap();
        sa.swap_rows(0, 7);
        assert_eq!(sa.read(0), vec![0u8; 16]);
        assert_eq!(sa.read(7), vec![1u8; 16]);
    }
}
