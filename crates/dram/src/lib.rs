//! # dlk-dram — cycle-level DRAM device model
//!
//! This crate is the hardware substrate of the [DRAM-Locker (DATE 2024)]
//! reproduction. It models a DRAM device at command granularity:
//!
//! - [`geometry`]: banks / subarrays / rows / columns and typed addresses;
//! - [`timing`]: DDR timing parameters (tRCD, tRP, tRAS, CL, tREFI, ...)
//!   with presets for DDR3/DDR4/LPDDR4;
//! - [`command`]: the DRAM command set — `ACT`, `PRE`, `RD`, `WR`, `REF`
//!   plus the back-to-back `AAP` (activate-activate) RowClone command;
//! - [`bank`] / [`subarray`]: bank state machines and row storage;
//! - [`device`]: the [`DramDevice`] tying everything together;
//! - [`rowhammer`]: the disturbance engine — per-row activation counters
//!   within a refresh window; crossing the RowHammer threshold (TRH) flips
//!   bits in neighbouring victim rows;
//! - [`rowclone`]: fast in-DRAM row copy (RowClone FPM/PSM) used by
//!   DRAM-Locker's SWAP operation;
//! - [`generation`]: published TRH values per DRAM generation (Fig. 1(b)
//!   of the paper);
//! - [`stats`]: command counts, cycle accounting and energy.
//!
//! The model is *command-level*: the device keeps a cycle clock, per-bank
//! busy-until times and a functional copy of row data, which is sufficient
//! to reproduce the latency/energy/security behaviour evaluated in the
//! paper without RTL-level detail.
//!
//! ## Example
//!
//! ```
//! use dlk_dram::{DramConfig, DramDevice, RowAddr};
//!
//! # fn main() -> Result<(), dlk_dram::DramError> {
//! let mut dram = DramDevice::new(DramConfig::default());
//! let row = RowAddr::new(0, 0, 42);
//! dram.write_row(row, &vec![0xAB; dram.geometry().row_bytes])?;
//! let data = dram.read_row(row)?;
//! assert!(data.iter().all(|&b| b == 0xAB));
//! # Ok(())
//! # }
//! ```
//!
//! [DRAM-Locker (DATE 2024)]: https://arxiv.org/abs/2312.09027

pub mod bank;
pub mod command;
pub mod device;
pub mod error;
pub mod generation;
pub mod geometry;
pub mod rowclone;
pub mod rowhammer;
pub mod stats;
pub mod subarray;
pub mod timing;

pub use crate::bank::{Bank, BankState};
pub use crate::command::{CommandKind, CommandResult, DramCommand};
pub use crate::device::{DramConfig, DramDevice};
pub use crate::error::DramError;
pub use crate::generation::DramGeneration;
pub use crate::geometry::{BankId, DramGeometry, RowAddr, RowId, SubarrayId};
pub use crate::rowclone::{CloneMode, RowCloneEngine};
pub use crate::rowhammer::{DisturbanceEvent, FlipTarget, HammerTracker, RowHammerConfig};
pub use crate::stats::{DramStats, EnergyModel};
pub use crate::timing::TimingParams;
