//! RowHammer disturbance engine.
//!
//! The tracker counts activations per row within the current refresh
//! window. Whenever a row's count crosses a multiple of the RowHammer
//! threshold (TRH), a disturbance fires: one bit flips in each
//! neighbouring victim row (distance 1 on both sides; optionally
//! distance 2 to model Half-Double-style attacks).
//!
//! Which bit flips is decided by a *flip plan*: the threat model of the
//! paper grants the attacker precise control over the flipped bit
//! (DeepHammer-style precise multi-bit techniques), so victims can be
//! pre-seeded with target bit positions. Rows without a plan flip a
//! deterministic pseudo-random bit derived from the victim address and
//! the disturbance ordinal, keeping simulations reproducible.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

use crate::generation::DramGeneration;
use crate::geometry::{DramGeometry, RowAddr, RowId};

/// Configuration of the disturbance model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RowHammerConfig {
    /// Activations within one refresh window needed to disturb neighbours.
    pub trh: u64,
    /// Also disturb rows at distance 2 (Half-Double) with every
    /// `half_double_factor`-th threshold crossing. `0` disables it.
    pub half_double_factor: u64,
    /// Number of bits flipped in each victim per threshold crossing.
    pub flips_per_event: u32,
}

impl RowHammerConfig {
    /// Model for a given DRAM generation (distance-1 only, 1 flip/event).
    pub fn for_generation(generation: DramGeneration) -> Self {
        Self { trh: generation.trh(), half_double_factor: 0, flips_per_event: 1 }
    }

    /// Model with an explicit threshold.
    pub fn with_trh(trh: u64) -> Self {
        Self { trh, half_double_factor: 0, flips_per_event: 1 }
    }
}

impl Default for RowHammerConfig {
    fn default() -> Self {
        Self::for_generation(DramGeneration::Ddr4New)
    }
}

/// Where a disturbance flip landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FlipTarget {
    /// Victim row.
    pub row: RowAddr,
    /// Bit index within the victim row.
    pub bit: usize,
}

/// A single disturbance event: the aggressor crossed TRH and corrupted
/// a victim row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DisturbanceEvent {
    /// The hammered row.
    pub aggressor: RowAddr,
    /// The victim and the flipped bit.
    pub target: FlipTarget,
    /// How many times this aggressor has crossed TRH in this window.
    pub crossing: u64,
}

/// Per-row activation tracking and disturbance generation.
///
/// The hot-path state (`counts`, `victim_flips`) is kept in dense
/// arrays indexed by the device-global [`RowId`] — `RowId` is
/// bank-major, so each array is the concatenation of per-bank row
/// arrays. The arrays are sized lazily from the geometry on the first
/// activation, which keeps the constructor geometry-free. Only the
/// attacker flip *plans* stay in a map: they are sparse by nature (a
/// handful of targeted victim rows).
#[derive(Debug, Clone)]
pub struct HammerTracker {
    config: RowHammerConfig,
    /// Activations per row in the current refresh window, dense over
    /// `RowId`.
    counts: Vec<u64>,
    /// Attacker-chosen flip plans per victim row: bit positions consumed
    /// in order, then cycled.
    plans: HashMap<RowId, Vec<usize>>,
    /// How many flips each victim has absorbed (indexes into the plan),
    /// dense over `RowId`.
    victim_flips: Vec<u64>,
    total_events: u64,
}

impl HammerTracker {
    /// Creates a tracker with the given disturbance model.
    ///
    /// # Panics
    ///
    /// Panics if `config.trh == 0`: a zero threshold would silently
    /// disable disturbance generation (`is_multiple_of(0)` is never
    /// true), masking a misconfigured experiment as a hammer-immune
    /// device.
    pub fn new(config: RowHammerConfig) -> Self {
        assert!(config.trh > 0, "RowHammerConfig::trh must be nonzero");
        Self {
            config,
            counts: Vec::new(),
            plans: HashMap::new(),
            victim_flips: Vec::new(),
            total_events: 0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &RowHammerConfig {
        &self.config
    }

    /// Activation count of a row in the current window.
    pub fn count(&self, id: RowId) -> u64 {
        self.counts.get(id.0 as usize).copied().unwrap_or(0)
    }

    /// Total disturbance events since construction (not reset by
    /// refresh windows).
    pub fn total_events(&self) -> u64 {
        self.total_events
    }

    /// Registers an attacker flip plan: the n-th disturbance of `victim`
    /// flips `bits[n % bits.len()]`. An empty plan removes the entry.
    pub fn set_flip_plan(&mut self, victim: RowId, bits: Vec<usize>) {
        if bits.is_empty() {
            self.plans.remove(&victim);
        } else {
            self.plans.insert(victim, bits);
        }
    }

    /// Grows the dense arrays to cover `geometry` (first use, idempotent
    /// afterwards). New rows start at zero, matching the old map's
    /// absent-key semantics.
    fn ensure_capacity(&mut self, geometry: &DramGeometry) {
        let rows = geometry.total_rows() as usize;
        if self.counts.len() < rows {
            self.counts.resize(rows, 0);
            self.victim_flips.resize(rows, 0);
        }
    }

    /// Records one activation of `row` and returns any disturbance
    /// events it triggers on neighbouring victims.
    pub fn on_activate(&mut self, row: RowAddr, geometry: &DramGeometry) -> Vec<DisturbanceEvent> {
        self.ensure_capacity(geometry);
        let id = geometry.row_id(row);
        let count = &mut self.counts[id.0 as usize];
        *count += 1;
        if !(*count).is_multiple_of(self.config.trh) {
            return Vec::new();
        }
        let crossing = *count / self.config.trh;
        let mut events = Vec::new();
        let mut offsets: Vec<i64> = vec![-1, 1];
        if self.config.half_double_factor > 0
            && crossing.is_multiple_of(self.config.half_double_factor)
        {
            offsets.extend([-2, 2]);
        }
        for offset in offsets {
            let Some(victim) = row.neighbor(offset, geometry) else { continue };
            for _ in 0..self.config.flips_per_event {
                let bit = self.next_flip_bit(victim, geometry);
                self.total_events += 1;
                events.push(DisturbanceEvent {
                    aggressor: row,
                    target: FlipTarget { row: victim, bit },
                    crossing,
                });
            }
        }
        events
    }

    /// Picks the bit to flip in `victim`: the attacker's plan if one is
    /// registered, otherwise a deterministic pseudo-random bit.
    fn next_flip_bit(&mut self, victim: RowAddr, geometry: &DramGeometry) -> usize {
        self.ensure_capacity(geometry);
        let vid = geometry.row_id(victim);
        let ordinal = &mut self.victim_flips[vid.0 as usize];
        let n = *ordinal;
        *ordinal += 1;
        if let Some(plan) = self.plans.get(&vid) {
            return plan[(n as usize) % plan.len()];
        }
        // splitmix64 over (row id, ordinal) — deterministic, well mixed.
        let mut x = vid.0.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(n);
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        (x as usize) % (geometry.row_bytes * 8)
    }

    /// Number of flips a victim row has absorbed so far.
    pub fn victim_flip_count(&self, victim: RowId) -> u64 {
        self.victim_flips.get(victim.0 as usize).copied().unwrap_or(0)
    }

    /// Resets all activation counters (a refresh window elapsed).
    /// Flip plans and victim ordinals survive — refresh restores charge,
    /// not the attacker's targeting information.
    pub fn reset_window(&mut self) {
        self.counts.fill(0);
    }

    /// Resets the counter of a single row (targeted refresh / TRR).
    pub fn reset_row(&mut self, id: RowId) {
        if let Some(count) = self.counts.get_mut(id.0 as usize) {
            *count = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (HammerTracker, DramGeometry) {
        let geometry = DramGeometry::tiny();
        let tracker = HammerTracker::new(RowHammerConfig::with_trh(10));
        (tracker, geometry)
    }

    #[test]
    fn no_event_below_threshold() {
        let (mut tracker, geom) = setup();
        let row = RowAddr::new(0, 0, 10);
        for _ in 0..9 {
            assert!(tracker.on_activate(row, &geom).is_empty());
        }
        assert_eq!(tracker.count(geom.row_id(row)), 9);
    }

    #[test]
    fn event_fires_at_threshold_on_both_neighbors() {
        let (mut tracker, geom) = setup();
        let row = RowAddr::new(0, 0, 10);
        for _ in 0..9 {
            tracker.on_activate(row, &geom);
        }
        let events = tracker.on_activate(row, &geom);
        assert_eq!(events.len(), 2);
        let victims: Vec<u32> = events.iter().map(|e| e.target.row.row).collect();
        assert!(victims.contains(&9) && victims.contains(&11));
        assert!(events.iter().all(|e| e.crossing == 1));
    }

    #[test]
    fn edge_row_has_single_victim() {
        let (mut tracker, geom) = setup();
        let row = RowAddr::new(0, 0, 0);
        for _ in 0..9 {
            tracker.on_activate(row, &geom);
        }
        let events = tracker.on_activate(row, &geom);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].target.row.row, 1);
    }

    #[test]
    fn repeated_crossings_fire_repeatedly() {
        let (mut tracker, geom) = setup();
        let row = RowAddr::new(0, 0, 10);
        let mut total = 0;
        for _ in 0..35 {
            total += tracker.on_activate(row, &geom).len();
        }
        assert_eq!(total, 6); // 3 crossings x 2 victims
        assert_eq!(tracker.total_events(), 6);
    }

    #[test]
    fn flip_plan_controls_bits() {
        let (mut tracker, geom) = setup();
        let row = RowAddr::new(0, 0, 10);
        let victim = RowAddr::new(0, 0, 11);
        tracker.set_flip_plan(geom.row_id(victim), vec![42, 77]);
        let mut bits = Vec::new();
        for _ in 0..30 {
            for event in tracker.on_activate(row, &geom) {
                if event.target.row == victim {
                    bits.push(event.target.bit);
                }
            }
        }
        assert_eq!(bits, vec![42, 77, 42]);
    }

    #[test]
    fn window_reset_clears_counts_but_not_plans() {
        let (mut tracker, geom) = setup();
        let row = RowAddr::new(0, 0, 10);
        let victim_id = geom.row_id(RowAddr::new(0, 0, 11));
        tracker.set_flip_plan(victim_id, vec![5]);
        for _ in 0..9 {
            tracker.on_activate(row, &geom);
        }
        tracker.reset_window();
        assert_eq!(tracker.count(geom.row_id(row)), 0);
        // Still 10 more activations needed after reset.
        for _ in 0..9 {
            assert!(tracker.on_activate(row, &geom).is_empty());
        }
        let events = tracker.on_activate(row, &geom);
        assert_eq!(events.iter().filter(|e| e.target.bit == 5).count(), 1);
    }

    #[test]
    fn targeted_row_refresh_resets_single_row() {
        let (mut tracker, geom) = setup();
        let a = RowAddr::new(0, 0, 10);
        let b = RowAddr::new(0, 0, 20);
        for _ in 0..5 {
            tracker.on_activate(a, &geom);
            tracker.on_activate(b, &geom);
        }
        tracker.reset_row(geom.row_id(a));
        assert_eq!(tracker.count(geom.row_id(a)), 0);
        assert_eq!(tracker.count(geom.row_id(b)), 5);
    }

    #[test]
    fn half_double_reaches_distance_two() {
        let geom = DramGeometry::tiny();
        let mut tracker = HammerTracker::new(RowHammerConfig {
            trh: 10,
            half_double_factor: 1,
            flips_per_event: 1,
        });
        let row = RowAddr::new(0, 0, 10);
        for _ in 0..9 {
            tracker.on_activate(row, &geom);
        }
        let events = tracker.on_activate(row, &geom);
        let victims: std::collections::HashSet<u32> =
            events.iter().map(|e| e.target.row.row).collect();
        assert_eq!(victims, [8, 9, 11, 12].into_iter().collect());
    }

    #[test]
    fn default_bit_choice_is_deterministic() {
        let geom = DramGeometry::tiny();
        let run = || {
            let mut tracker = HammerTracker::new(RowHammerConfig::with_trh(2));
            let row = RowAddr::new(0, 0, 10);
            let mut bits = Vec::new();
            for _ in 0..10 {
                for e in tracker.on_activate(row, &geom) {
                    bits.push((e.target.row.row, e.target.bit));
                }
            }
            bits
        };
        assert_eq!(run(), run());
    }
}
