//! DRAM generations and their published RowHammer thresholds.
//!
//! Reproduces the data behind Fig. 1(b) of the paper (originally from
//! Kim et al., ISCA 2020 and the SRS paper): the minimum number of
//! activations to an aggressor row needed to flip a bit in a victim row,
//! per DRAM generation. The clear downward trend motivates DRAM-Locker.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A DRAM generation with a published RowHammer threshold (TRH).
///
/// # Example
///
/// ```
/// use dlk_dram::DramGeneration;
/// // LPDDR4 (new) needs ~4.5x fewer hammers than DDR3 (new).
/// let ratio = DramGeneration::Ddr3New.trh() as f64
///     / DramGeneration::Lpddr4New.trh() as f64;
/// assert!(ratio > 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DramGeneration {
    /// First-generation DDR3 modules.
    Ddr3Old,
    /// Late-production DDR3 modules.
    Ddr3New,
    /// First-generation DDR4 modules.
    Ddr4Old,
    /// Late-production DDR4 modules.
    Ddr4New,
    /// First-generation LPDDR4 modules.
    Lpddr4Old,
    /// Late-production LPDDR4 modules (threshold reported as a range,
    /// 4.8k–9k; [`DramGeneration::trh`] returns the conservative lower
    /// bound).
    Lpddr4New,
}

impl DramGeneration {
    /// All generations in Fig. 1(b) order.
    pub const ALL: [DramGeneration; 6] = [
        DramGeneration::Ddr3Old,
        DramGeneration::Ddr3New,
        DramGeneration::Ddr4Old,
        DramGeneration::Ddr4New,
        DramGeneration::Lpddr4Old,
        DramGeneration::Lpddr4New,
    ];

    /// RowHammer threshold: activations within one refresh window needed
    /// to disturb a neighbouring row (lower bound where a range was
    /// reported).
    pub fn trh(&self) -> u64 {
        match self {
            DramGeneration::Ddr3Old => 139_000,
            DramGeneration::Ddr3New => 22_400,
            DramGeneration::Ddr4Old => 17_500,
            DramGeneration::Ddr4New => 10_000,
            DramGeneration::Lpddr4Old => 16_800,
            DramGeneration::Lpddr4New => 4_800,
        }
    }

    /// Upper bound of the published TRH range (equal to [`trh`] when a
    /// single value was reported).
    ///
    /// [`trh`]: DramGeneration::trh
    pub fn trh_upper(&self) -> u64 {
        match self {
            DramGeneration::Lpddr4New => 9_000,
            other => other.trh(),
        }
    }

    /// Human-readable label matching the paper's table.
    pub fn label(&self) -> &'static str {
        match self {
            DramGeneration::Ddr3Old => "DDR3 (old)",
            DramGeneration::Ddr3New => "DDR3 (new)",
            DramGeneration::Ddr4Old => "DDR4 (old)",
            DramGeneration::Ddr4New => "DDR4 (new)",
            DramGeneration::Lpddr4Old => "LPDDR4 (old)",
            DramGeneration::Lpddr4New => "LPDDR4 (new)",
        }
    }
}

impl fmt::Display for DramGeneration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thresholds_match_fig1b() {
        assert_eq!(DramGeneration::Ddr3Old.trh(), 139_000);
        assert_eq!(DramGeneration::Ddr3New.trh(), 22_400);
        assert_eq!(DramGeneration::Ddr4Old.trh(), 17_500);
        assert_eq!(DramGeneration::Ddr4New.trh(), 10_000);
        assert_eq!(DramGeneration::Lpddr4Old.trh(), 16_800);
        assert_eq!(DramGeneration::Lpddr4New.trh(), 4_800);
        assert_eq!(DramGeneration::Lpddr4New.trh_upper(), 9_000);
    }

    #[test]
    fn downward_trend_within_families() {
        assert!(DramGeneration::Ddr3New.trh() < DramGeneration::Ddr3Old.trh());
        assert!(DramGeneration::Ddr4New.trh() < DramGeneration::Ddr4Old.trh());
        assert!(DramGeneration::Lpddr4New.trh() < DramGeneration::Lpddr4Old.trh());
    }

    #[test]
    fn lpddr4_new_vs_ddr3_new_ratio_about_4_5x() {
        // The paper: "LPDDR4 (new) requires approximately 4.5 times fewer
        // hammering iterations" than DDR3 (new). 22_400 / 4_800 = 4.67.
        let ratio = DramGeneration::Ddr3New.trh() as f64 / DramGeneration::Lpddr4New.trh() as f64;
        assert!((4.0..5.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn all_contains_every_generation_once() {
        let set: std::collections::HashSet<_> = DramGeneration::ALL.iter().collect();
        assert_eq!(set.len(), 6);
    }

    #[test]
    fn upper_bound_never_below_lower() {
        for gen in DramGeneration::ALL {
            assert!(gen.trh_upper() >= gen.trh());
        }
    }
}
