//! Command statistics and energy accounting.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use crate::command::CommandKind;

/// Per-command energy model in picojoules.
///
/// Defaults follow the relative magnitudes reported for DDR4 and the
/// RowClone paper: an in-DRAM copy consumes roughly 74x less energy than
/// moving the same row over the memory channel (one ACT + row-of-RDs +
/// writeback), because the data never leaves the chip.
///
/// # Example
///
/// ```
/// use dlk_dram::{EnergyModel, CommandKind};
/// let e = EnergyModel::default();
/// assert!(e.energy_pj(CommandKind::Aap) < 100.0 * e.energy_pj(CommandKind::Rd));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Energy of a row activation (pJ).
    pub act_pj: f64,
    /// Energy of a precharge (pJ).
    pub pre_pj: f64,
    /// Energy of a column read burst (pJ).
    pub rd_pj: f64,
    /// Energy of a column write burst (pJ).
    pub wr_pj: f64,
    /// Energy of one refresh command (pJ).
    pub ref_pj: f64,
    /// Energy of a RowClone AAP copy (pJ). One extra activation on top
    /// of a normal ACT; no channel transfer.
    pub aap_pj: f64,
    /// Background/static power per cycle (pJ/cycle), charged on advance.
    pub static_pj_per_cycle: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self {
            act_pj: 909.0,
            pre_pj: 585.0,
            rd_pj: 470.0,
            wr_pj: 510.0,
            ref_pj: 19_000.0,
            aap_pj: 1_320.0, // two activations back-to-back, no I/O
            static_pj_per_cycle: 0.08,
        }
    }
}

impl EnergyModel {
    /// The DDR4 datasheet preset.
    ///
    /// Per-command energies derived with the Micron DDR4 power
    /// calculator methodology (`E = VDD · ΔIDD · t`) from the Micron
    /// MT40A1G8 DDR4-2400 datasheet at VDD = 1.2 V: one ACT–PRE cycle
    /// draws IDD0 − IDD3N ≈ 13 mA over tRC = 45.3 ns ≈ 0.7 nJ,
    /// apportioned ~60/40 between activation and precharge; a column
    /// read/write burst draws IDD4R/IDD4W − IDD3N ≈ 100/90 mA over
    /// 8 × tCK ≈ 6.7 ns plus I/O termination; one all-bank REF draws
    /// IDD5B − IDD3N ≈ 145 mA over tRFC = 350 ns ≈ 61 nJ spread over
    /// 8192 rows per tREFI tick ≈ 21 nJ per REF command at this scaled
    /// geometry; background power IDD3N ≈ 50 mA → 0.05 pJ/cycle
    /// per-bank share at 1.2 GHz.
    pub fn ddr4() -> Self {
        Self {
            act_pj: 420.0,
            pre_pj: 280.0,
            rd_pj: 800.0,
            wr_pj: 720.0,
            ref_pj: 21_000.0,
            aap_pj: 640.0, // two back-to-back ACTs, no I/O power
            static_pj_per_cycle: 0.05,
        }
    }

    /// The LPDDR4 datasheet preset.
    ///
    /// Same methodology from the Micron MT53B LPDDR4-3200 datasheet at
    /// VDD2 = 1.1 V / VDDQ = 0.6 V: mobile parts cut array voltage and
    /// especially I/O swing, so core operations cost ~30% less than
    /// DDR4 and read/write bursts less than half (sub-LVSTL signaling
    /// instead of POD12 termination); refresh is cheaper per command
    /// but issued twice as often (tREFW = 32 ms); deep power-down
    /// background current is an order of magnitude lower.
    pub fn lpddr4() -> Self {
        Self {
            act_pj: 300.0,
            pre_pj: 200.0,
            rd_pj: 350.0,
            wr_pj: 320.0,
            ref_pj: 14_000.0,
            aap_pj: 460.0,
            static_pj_per_cycle: 0.008,
        }
    }

    /// Energy in picojoules for one command of the given kind.
    pub fn energy_pj(&self, kind: CommandKind) -> f64 {
        match kind {
            CommandKind::Act => self.act_pj,
            CommandKind::Pre => self.pre_pj,
            CommandKind::Rd => self.rd_pj,
            CommandKind::Wr => self.wr_pj,
            CommandKind::Ref => self.ref_pj,
            CommandKind::Aap => self.aap_pj,
        }
    }

    /// Energy of copying one row over the memory channel (ACT + reads of
    /// the whole row + writes back + PRE), used as the RowClone baseline.
    pub fn channel_copy_pj(&self, row_bytes: usize, burst_bytes: usize) -> f64 {
        let bursts = row_bytes.div_ceil(burst_bytes) as f64;
        2.0 * (self.act_pj + self.pre_pj) + bursts * (self.rd_pj + self.wr_pj)
    }
}

/// Aggregate statistics of a [`DramDevice`](crate::DramDevice).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DramStats {
    /// Commands issued, bucketed by kind.
    pub commands: BTreeMap<CommandKind, u64>,
    /// Total energy consumed, picojoules.
    pub energy_pj: f64,
    /// Total cycles elapsed on the device clock.
    pub cycles: u64,
    /// Total RowHammer disturbance events (victim-row corruptions).
    pub disturbances: u64,
    /// Total bit flips injected into stored data.
    pub bit_flips: u64,
    /// Number of row-buffer hits (RD/WR to the already-open row).
    pub row_buffer_hits: u64,
    /// Number of row-buffer misses (ACT needed before access).
    pub row_buffer_misses: u64,
}

impl DramStats {
    /// Creates an empty statistics record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one command of `kind`.
    pub fn record(&mut self, kind: CommandKind, energy_pj: f64) {
        *self.commands.entry(kind).or_insert(0) += 1;
        self.energy_pj += energy_pj;
    }

    /// Count of commands of a given kind.
    pub fn count(&self, kind: CommandKind) -> u64 {
        self.commands.get(&kind).copied().unwrap_or(0)
    }

    /// Total activations including the two implicit ACTs of each AAP.
    pub fn total_activations(&self) -> u64 {
        self.count(CommandKind::Act) + 2 * self.count(CommandKind::Aap)
    }

    /// Merges another statistics record into this one.
    pub fn merge(&mut self, other: &DramStats) {
        for (kind, n) in &other.commands {
            *self.commands.entry(*kind).or_insert(0) += n;
        }
        self.energy_pj += other.energy_pj;
        self.cycles = self.cycles.max(other.cycles);
        self.disturbances += other.disturbances;
        self.bit_flips += other.bit_flips;
        self.row_buffer_hits += other.row_buffer_hits;
        self.row_buffer_misses += other.row_buffer_misses;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_count() {
        let mut stats = DramStats::new();
        stats.record(CommandKind::Act, 900.0);
        stats.record(CommandKind::Act, 900.0);
        stats.record(CommandKind::Rd, 400.0);
        assert_eq!(stats.count(CommandKind::Act), 2);
        assert_eq!(stats.count(CommandKind::Rd), 1);
        assert_eq!(stats.count(CommandKind::Wr), 0);
        assert!((stats.energy_pj - 2200.0).abs() < 1e-9);
    }

    #[test]
    fn aap_counts_double_activation() {
        let mut stats = DramStats::new();
        stats.record(CommandKind::Act, 0.0);
        stats.record(CommandKind::Aap, 0.0);
        assert_eq!(stats.total_activations(), 3);
    }

    #[test]
    fn lpddr4_is_cheaper_than_ddr4_per_command() {
        // The point of a mobile part: every operation, and especially
        // I/O (reads/writes) and background power, costs less.
        let (d, l) = (EnergyModel::ddr4(), EnergyModel::lpddr4());
        for kind in [
            CommandKind::Act,
            CommandKind::Pre,
            CommandKind::Rd,
            CommandKind::Wr,
            CommandKind::Ref,
            CommandKind::Aap,
        ] {
            assert!(l.energy_pj(kind) < d.energy_pj(kind), "{kind:?}");
        }
        assert!(l.static_pj_per_cycle < d.static_pj_per_cycle / 5.0);
        // LPDDR4's I/O saving is disproportionate: bursts cost less
        // than half, while core ops save ~30%.
        assert!(l.rd_pj < d.rd_pj / 2.0);
        assert!(l.act_pj > d.act_pj / 2.0);
    }

    #[test]
    fn rowclone_energy_advantage_over_channel_copy() {
        // RowClone's headline: ~74x energy reduction for a bulk copy.
        let e = EnergyModel::default();
        let channel = e.channel_copy_pj(8192, 64);
        let ratio = channel / e.aap_pj;
        assert!(ratio > 50.0, "expected large advantage, got {ratio:.1}x");
    }

    #[test]
    fn merge_accumulates() {
        let mut a = DramStats::new();
        a.record(CommandKind::Act, 10.0);
        a.bit_flips = 2;
        let mut b = DramStats::new();
        b.record(CommandKind::Act, 5.0);
        b.record(CommandKind::Ref, 1.0);
        b.bit_flips = 3;
        a.merge(&b);
        assert_eq!(a.count(CommandKind::Act), 2);
        assert_eq!(a.count(CommandKind::Ref), 1);
        assert_eq!(a.bit_flips, 5);
        assert!((a.energy_pj - 16.0).abs() < 1e-9);
    }
}
