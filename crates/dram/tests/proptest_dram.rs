//! Property-based tests of the DRAM device invariants.

use proptest::prelude::*;

use dlk_dram::{CommandKind, DramCommand, DramConfig, DramDevice, DramGeometry, RowAddr};

proptest! {
    /// Any legal ACT→(RD|WR)*→PRE sequence advances the clock
    /// monotonically and leaves the bank idle.
    #[test]
    fn command_sequences_advance_time(accesses in 1usize..8, writes in any::<bool>()) {
        let mut dram = DramDevice::new(DramConfig::tiny_for_tests());
        let row = RowAddr::new(0, 0, 3);
        let mut last = dram.now();
        dram.issue(DramCommand::Act(row)).unwrap();
        prop_assert!(dram.now() >= last);
        last = dram.now();
        for _ in 0..accesses {
            let cmd = if writes {
                DramCommand::Wr { bank: 0, col: 0 }
            } else {
                DramCommand::Rd { bank: 0, col: 0 }
            };
            dram.issue(cmd).unwrap();
            prop_assert!(dram.now() >= last);
            last = dram.now();
        }
        dram.issue(DramCommand::Pre(0)).unwrap();
        prop_assert!(dram.now() > last);
        prop_assert_eq!(dram.open_row_of(0), None);
    }

    /// Writing arbitrary data to arbitrary rows always reads back
    /// identically (functional path).
    #[test]
    fn row_data_integrity(
        bank in 0u16..2,
        subarray in 0u16..2,
        row in 0u32..64,
        seed in any::<u8>(),
    ) {
        let mut dram = DramDevice::new(DramConfig::tiny_for_tests());
        let addr = RowAddr::new(bank, subarray, row);
        let data: Vec<u8> = (0..64).map(|i| seed.wrapping_add(i)).collect();
        dram.write_row(addr, &data).unwrap();
        prop_assert_eq!(dram.read_row(addr).unwrap(), data);
    }

    /// AAP copies are exact for any source contents and same-subarray
    /// destination.
    #[test]
    fn aap_copies_exactly(src_row in 0u32..32, dst_row in 32u32..64, fill in any::<u8>()) {
        let mut dram = DramDevice::new(DramConfig::tiny_for_tests());
        let src = RowAddr::new(1, 1, src_row);
        let dst = RowAddr::new(1, 1, dst_row);
        dram.write_row(src, &[fill; 64]).unwrap();
        dram.issue(DramCommand::Aap { src, dst }).unwrap();
        prop_assert_eq!(dram.read_row(dst).unwrap(), vec![fill; 64]);
        prop_assert_eq!(dram.read_row(src).unwrap(), vec![fill; 64]);
    }

    /// Hammering below TRH never corrupts any neighbour, for any
    /// aggressor position.
    #[test]
    fn no_disturbance_below_threshold(row in 2u32..62) {
        let mut dram = DramDevice::new(DramConfig::tiny_for_tests());
        let trh = dram.config().hammer.trh;
        let aggressor = RowAddr::new(0, 0, row);
        let up = RowAddr::new(0, 0, row - 1);
        let down = RowAddr::new(0, 0, row + 1);
        let before_up = dram.read_row(up).unwrap();
        let before_down = dram.read_row(down).unwrap();
        for _ in 0..trh - 1 {
            dram.issue(DramCommand::Act(aggressor)).unwrap();
            dram.issue(DramCommand::Pre(0)).unwrap();
        }
        prop_assert_eq!(dram.read_row(up).unwrap(), before_up);
        prop_assert_eq!(dram.read_row(down).unwrap(), before_down);
        prop_assert_eq!(dram.stats().disturbances, 0);
    }

    /// Energy accounting is additive: total equals the sum over
    /// command kinds.
    #[test]
    fn energy_is_additive(ops in 1usize..20) {
        let mut dram = DramDevice::new(DramConfig::tiny_for_tests());
        let row = RowAddr::new(0, 0, 1);
        for _ in 0..ops {
            dram.issue(DramCommand::Act(row)).unwrap();
            dram.issue(DramCommand::Rd { bank: 0, col: 0 }).unwrap();
            dram.issue(DramCommand::Pre(0)).unwrap();
        }
        let energy = dram.config().energy;
        let expected: f64 = CommandKind::ALL
            .iter()
            .map(|&kind| dram.stats().count(kind) as f64 * energy.energy_pj(kind))
            .sum();
        prop_assert!((dram.stats().energy_pj - expected).abs() < 1e-6);
    }

    /// The geometry row-id space is dense: every id below total_rows
    /// maps to an address and back.
    #[test]
    fn row_id_space_is_dense(id in 0u64..256) {
        let geometry = DramGeometry::tiny();
        let id = dlk_dram::RowId(id % geometry.total_rows());
        let addr = geometry.row_addr(id).unwrap();
        prop_assert_eq!(geometry.row_id(addr), id);
    }
}
