//! Regenerates both panels of Fig. 8 (BFA accuracy degradation with
//! and without DRAM-Locker), then benchmarks a defended hammer attempt
//! through the unified scenario pipeline. The artifact prints once,
//! outside the measured closure.

use std::sync::Once;

use criterion::{criterion_group, criterion_main, Criterion};

use dlk_bench::print_once;
use dlk_sim::{Budget, HammerAttack, LockerMitigation, Scenario, VictimSpec};
use dlk_xlayer::experiments::{fig8, Fidelity};

static ARTIFACT: Once = Once::new();

fn bench_fig8(c: &mut Criterion) {
    print_once(&ARTIFACT, || {
        fig8::run(Fidelity::Full).iter().map(fig8::Fig8Panel::render).collect::<Vec<_>>().join("\n")
    });

    let mut group = c.benchmark_group("fig8");
    group.sample_size(20);
    group.bench_function("denied_hammer_campaign", |b| {
        let mut run = Scenario::builder()
            .label("fig8-kernel")
            .victim(VictimSpec::row(20, 0xA5))
            .attack(HammerAttack::bit(5))
            .defense(LockerMitigation::adjacent())
            .budget(Budget { max_activations: 64, check_interval: 8, iterations: 1 })
            .build()
            .expect("scenario builds");
        b.iter(|| run.run().expect("defended campaign runs"))
    });
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
