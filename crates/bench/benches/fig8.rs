//! Regenerates both panels of Fig. 8 (BFA accuracy degradation with
//! and without DRAM-Locker), then benchmarks a defended hammer attempt.

use std::sync::Once;

use criterion::{criterion_group, criterion_main, Criterion};

use dlk_attacks::hammer::{HammerConfig, HammerDriver};
use dlk_bench::print_once;
use dlk_dram::RowAddr;
use dlk_locker::{DramLocker, LockerConfig};
use dlk_memctrl::{MemCtrlConfig, MemoryController};
use dlk_xlayer::experiments::{fig8, Fidelity};

static ARTIFACT: Once = Once::new();

fn bench_fig8(c: &mut Criterion) {
    print_once(&ARTIFACT, || {
        fig8::run(Fidelity::Full).iter().map(fig8::Fig8Panel::render).collect::<Vec<_>>().join("\n")
    });

    let mut group = c.benchmark_group("fig8");
    group.sample_size(20);
    group.bench_function("denied_hammer_campaign", |b| {
        let config = MemCtrlConfig::tiny_for_tests();
        let mut locker = DramLocker::new(LockerConfig::default(), config.dram.geometry);
        locker.lock_row(RowAddr::new(0, 0, 19)).expect("capacity");
        locker.lock_row(RowAddr::new(0, 0, 21)).expect("capacity");
        let mut ctrl = MemoryController::with_hook(config, Box::new(locker));
        let driver = HammerDriver::new(HammerConfig { max_activations: 64, check_interval: 8 });
        b.iter(|| driver.hammer_bit(&mut ctrl, RowAddr::new(0, 0, 20), 5).expect("runs"))
    });
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
