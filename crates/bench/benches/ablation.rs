//! Ablations of DRAM-Locker's design choices (DESIGN.md §6):
//!
//! - re-lock interval (paper: 1k R/W) — swap churn vs exposure;
//! - lock target (adjacent rows vs the data rows themselves) —
//!   unlock frequency under victim traffic;
//! - free-pool size — swap availability;
//! - scheduling policy (FCFS vs FR-FCFS) under a locked-row mix.

use std::sync::Once;

use criterion::{criterion_group, criterion_main, Criterion};

use dlk_bench::print_once;
use dlk_dram::RowAddr;
use dlk_locker::{DramLocker, LockTarget, LockerConfig, ProtectionPlan};
use dlk_memctrl::{MemCtrlConfig, MemRequest, MemoryController, SchedulingPolicy};

static ARTIFACT: Once = Once::new();

/// Victim workload: mixed reads over its data rows plus periodic
/// touches of a locked row. Returns (swaps, relocks, mean latency).
fn victim_workload(relock_interval: u64, target: LockTarget) -> (u64, u64, f64) {
    let config = MemCtrlConfig::tiny_for_tests();
    let row_bytes = config.dram.geometry.row_bytes as u64;
    let mut locker = DramLocker::new(
        LockerConfig { relock_interval, lock_target: target, ..LockerConfig::default() },
        config.dram.geometry,
    );
    let mut plan = ProtectionPlan::new(target);
    let mut ctrl = {
        // Protect rows 10..12 (data) -> locks depend on the policy.
        let mapper = dlk_memctrl::AddressMapper::new(
            config.dram.geometry,
            dlk_memctrl::MappingScheme::BankSequential,
        );
        plan.protect_range(&mapper, 10 * row_bytes, 12 * row_bytes).expect("range maps");
        plan.apply(&mut locker).expect("capacity");
        MemoryController::with_hook(config, Box::new(locker))
    };
    // 2000 accesses: mostly data rows, every 10th hits a neighbour.
    for index in 0..2000u64 {
        let row = if index % 10 == 0 { 9 } else { 10 + index % 2 };
        ctrl.service(MemRequest::read(row * row_bytes, 1)).expect("request");
    }
    let stats = ctrl.stats();
    (stats.redirected, stats.denied, stats.mean_latency())
}

fn bench_ablation(c: &mut Criterion) {
    print_once(&ARTIFACT, || {
        let mut out = String::from("== Ablations ==\n");
        out.push_str("relock_interval -> (redirects, denies, mean latency cycles)\n");
        for interval in [100u64, 1_000, 10_000] {
            let (redirects, denies, mean) = victim_workload(interval, LockTarget::AdjacentRows);
            out.push_str(&format!(
                "  interval {interval:>6}: redirects {redirects:>5}, denies {denies:>4}, mean {mean:.1}\n"
            ));
        }
        out.push_str("lock target policy (victim workload cost)\n");
        for (label, target) in [
            ("adjacent-rows", LockTarget::AdjacentRows),
            ("data-rows", LockTarget::DataRows),
            ("both", LockTarget::Both),
        ] {
            let (redirects, denies, mean) = victim_workload(1_000, target);
            out.push_str(&format!(
                "  {label:<14}: redirects {redirects:>5}, denies {denies:>4}, mean {mean:.1}\n"
            ));
        }
        out
    });

    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    for policy in [SchedulingPolicy::Fcfs, SchedulingPolicy::FrFcfs] {
        group.bench_function(format!("scheduling_{policy:?}"), |b| {
            let config = MemCtrlConfig { policy, ..MemCtrlConfig::tiny_for_tests() };
            let mut ctrl = MemoryController::new(config);
            let row_bytes = ctrl.geometry().row_bytes as u64;
            b.iter(|| {
                for index in 0..64u64 {
                    // Two interleaved row streams: FR-FCFS batches hits.
                    let row = if index % 2 == 0 { 3 } else { 4 };
                    ctrl.submit(MemRequest::read(row * row_bytes + index % 8, 1));
                }
                ctrl.run_to_completion().expect("drain")
            })
        });
    }
    group.bench_function("swap_vs_relock_interval_100", |b| {
        b.iter(|| victim_workload(100, LockTarget::AdjacentRows))
    });
    group.finish();

    // Keep RowAddr linked for the doc comment.
    let _ = RowAddr::new(0, 0, 0);
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
