//! Ablations of DRAM-Locker's design choices (DESIGN.md §6):
//!
//! - re-lock interval (paper: 1k R/W) — swap churn vs exposure;
//! - lock target (adjacent rows vs the data rows themselves) —
//!   unlock frequency under victim traffic;
//! - free-pool size — swap availability;
//! - scheduling policy (FCFS vs FR-FCFS) under a locked-row mix.
//!
//! The victim-workload ablations run through the unified scenario
//! pipeline with a custom benign [`Attack`] driver; the artifact prints
//! once, outside the measured closures. The scheduling group benches
//! the raw request queue (a primitive, not a scenario).

use std::sync::Once;

use criterion::{criterion_group, criterion_main, Criterion};

use dlk_bench::print_once;
use dlk_locker::{LockTarget, LockerConfig};
use dlk_memctrl::{MemCtrlConfig, MemRequest, MemoryController, SchedulingPolicy};
use dlk_sim::{Attack, AttackOutcome, LockerMitigation, RunEnv, Scenario, SimError, VictimSpec};

static ARTIFACT: Once = Once::new();

/// Victim workload: mixed reads over its data rows plus periodic
/// touches of a locked neighbour row.
struct VictimMix {
    accesses: u64,
}

impl Attack for VictimMix {
    fn name(&self) -> &str {
        "victim-mix"
    }

    fn execute(&mut self, env: &mut RunEnv<'_>) -> Result<AttackOutcome, SimError> {
        let row_bytes = env.ctrl().geometry().row_bytes as u64;
        let mut outcome = AttackOutcome::default();
        // 2000 accesses: mostly data rows 10/11, every 10th hits the
        // locked neighbour row 9.
        for index in 0..self.accesses {
            let row = if index % 10 == 0 { 9 } else { 10 + index % 2 };
            let done = env.ctrl().service(MemRequest::read(row * row_bytes, 1))?;
            outcome.requests += 1;
            if done.denied {
                outcome.denied += 1;
            }
        }
        Ok(outcome)
    }
}

/// Returns (redirects, denies, mean latency) for one configuration.
fn victim_workload(relock_interval: u64, target: LockTarget) -> (u64, u64, f64) {
    let config = LockerConfig { relock_interval, lock_target: target, ..LockerConfig::default() };
    let report = Scenario::builder()
        .label("ablation")
        // Protect rows 10..12 (data) -> locks depend on the policy.
        .victim(VictimSpec::row_span(10, 2, 0xA5))
        .defense(LockerMitigation::new(config, target))
        // A one-off bench driver, not part of the attack zoo: mounted
        // through the builder's custom escape hatch.
        .custom_attack(VictimMix { accesses: 2_000 })
        .build()
        .expect("scenario builds")
        .run()
        .expect("workload runs");
    (report.controller.redirected, report.controller.denied, report.controller.mean_latency())
}

fn bench_ablation(c: &mut Criterion) {
    print_once(&ARTIFACT, || {
        let mut out = String::from("== Ablations ==\n");
        out.push_str("relock_interval -> (redirects, denies, mean latency cycles)\n");
        for interval in [100u64, 1_000, 10_000] {
            let (redirects, denies, mean) = victim_workload(interval, LockTarget::AdjacentRows);
            out.push_str(&format!(
                "  interval {interval:>6}: redirects {redirects:>5}, denies {denies:>4}, mean {mean:.1}\n"
            ));
        }
        out.push_str("lock target policy (victim workload cost)\n");
        for (label, target) in [
            ("adjacent-rows", LockTarget::AdjacentRows),
            ("data-rows", LockTarget::DataRows),
            ("both", LockTarget::Both),
        ] {
            let (redirects, denies, mean) = victim_workload(1_000, target);
            out.push_str(&format!(
                "  {label:<14}: redirects {redirects:>5}, denies {denies:>4}, mean {mean:.1}\n"
            ));
        }
        out
    });

    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    for policy in [SchedulingPolicy::Fcfs, SchedulingPolicy::FrFcfs] {
        group.bench_function(format!("scheduling_{policy:?}"), |b| {
            let config = MemCtrlConfig { policy, ..MemCtrlConfig::tiny_for_tests() };
            let mut ctrl = MemoryController::new(config);
            let row_bytes = ctrl.geometry().row_bytes as u64;
            b.iter(|| {
                for index in 0..64u64 {
                    // Two interleaved row streams: FR-FCFS batches hits.
                    let row = if index % 2 == 0 { 3 } else { 4 };
                    ctrl.submit(MemRequest::read(row * row_bytes + index % 8, 1));
                }
                ctrl.run_to_completion().expect("drain")
            })
        });
    }
    group.bench_function("swap_vs_relock_interval_100", |b| {
        b.iter(|| victim_workload(100, LockTarget::AdjacentRows))
    });
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
