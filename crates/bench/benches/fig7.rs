//! Regenerates Fig. 7(a) (latency per Tref vs #BFA) and Fig. 7(b)
//! (defense time per threshold), then benchmarks the underlying SWAP
//! primitive against the channel-copy baseline it replaces.

use std::sync::Once;

use criterion::{criterion_group, criterion_main, Criterion};

use dlk_bench::print_once;
use dlk_dram::{DramConfig, DramDevice, RowAddr};
use dlk_xlayer::experiments::{fig7a, fig7b, Fidelity};

static ARTIFACT: Once = Once::new();

fn bench_fig7(c: &mut Criterion) {
    print_once(&ARTIFACT, || {
        let mut out = fig7a::run(Fidelity::Full).render();
        out.push('\n');
        out.push_str(&fig7b::run().to_string());
        out
    });

    let mut group = c.benchmark_group("fig7");
    group.sample_size(20);
    group.bench_function("swap_three_copies", |b| {
        let mut dram = DramDevice::new(DramConfig::tiny_for_tests());
        let a = RowAddr::new(0, 0, 1);
        let row_b = RowAddr::new(0, 0, 2);
        let buffer = RowAddr::new(0, 0, 63);
        b.iter(|| dram.swap_rows(a, row_b, buffer).expect("swap runs"))
    });
    group.bench_function("channel_copy_equivalent", |b| {
        let mut dram = DramDevice::new(DramConfig::tiny_for_tests());
        let src = RowAddr::new(0, 0, 1);
        let dst = RowAddr::new(0, 0, 2);
        b.iter(|| {
            // What a swap costs without RowClone: read out and write
            // back both rows over the channel.
            let a = dram.read_row(src).expect("read");
            let bb = dram.read_row(dst).expect("read");
            for (i, chunk) in a.chunks(8).enumerate() {
                dram.access_write(dst, i * 8, chunk).expect("write");
            }
            for (i, chunk) in bb.chunks(8).enumerate() {
                dram.access_write(src, i * 8, chunk).expect("write");
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
