//! Regenerates Table I (hardware overheads) and benchmarks the
//! structure whose cost it is all about: the lock-table lookup.

use std::sync::Once;

use criterion::{criterion_group, criterion_main, Criterion};

use dlk_bench::print_once;
use dlk_dram::RowId;
use dlk_locker::LockTable;
use dlk_xlayer::experiments::table1;

static ARTIFACT: Once = Once::new();

fn bench_table1(c: &mut Criterion) {
    print_once(&ARTIFACT, || table1::run().to_string());

    let mut group = c.benchmark_group("table1");
    // Fill the lock-table to the paper's 56 KB budget.
    let capacity = 56 * 1024 / 8;
    let mut table = LockTable::new(capacity);
    table.extend((0..capacity as u64).map(RowId));
    group.bench_function("lock_table_lookup_hit", |b| b.iter(|| table.is_locked(RowId(1234))));
    group.bench_function("lock_table_lookup_miss", |b| b.iter(|| table.is_locked(RowId(u64::MAX))));
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
