//! CNN inference weight-fetch on the sharded engine: the ResNet-20-
//! shaped victim's weight image streamed through the memory controller
//! as its inference loop would fetch it, serial vs. 2-channel sharded.
//!
//! Bench hygiene (ROADMAP): the artifact block — device cycles and
//! batched-vs-per-request service comparison — prints once via
//! `print_once`, strictly outside the measured closures; the criterion
//! group then measures only the replay kernels.

use std::sync::Once;

use criterion::{criterion_group, criterion_main, Criterion};

use dlk_bench::print_once;
use dlk_dnn::{models, QuantizedMlp, WeightLayout};
use dlk_engine::{EngineConfig, ShardedEngine, TraceReplay};
use dlk_memctrl::{AddressMapper, MemCtrlConfig, MemoryController, Trace};

static ARTIFACT: Once = Once::new();

const WEIGHT_BASE: u64 = 0x400;
const BATCHES: usize = 4;
const CHUNK: usize = 32;

fn model() -> QuantizedMlp {
    models::victim_resnet20_cnn(42).model
}

/// The weight-fetch trace in *global* addresses. The image is laid
/// out contiguously in the global space, so on a multi-channel engine
/// its rows interleave across channels (the router's row striping) and
/// the fetch stream fans out — the deployment a bandwidth-hungry
/// inference server would choose. (`ChannelRouter::globalize_trace`
/// would instead pin the image to one shard, the single-tenant
/// isolation layout the scenario catalog exercises.)
fn global_fetch_trace(model: &QuantizedMlp) -> Trace {
    let config = MemCtrlConfig::tiny_for_tests();
    let mapper = AddressMapper::new(config.dram.geometry, config.scheme);
    let layout = WeightLayout::new(WEIGHT_BASE, mapper);
    layout.fetch_trace(model, BATCHES, CHUNK).expect("image fits")
}

/// Replays the fetch trace on a fresh engine; returns device cycles.
fn replay_once(channels: usize, trace: &Trace) -> u64 {
    let mut engine =
        ShardedEngine::new(EngineConfig::sharded(channels), MemCtrlConfig::tiny_for_tests())
            .expect("engine builds");
    engine.replay(TraceReplay::new(trace)).expect("replay runs");
    engine.snapshot().cycles
}

/// Services the whole fetch as one controller batch; returns cycles.
fn batched_once(requests: &[dlk_memctrl::MemRequest]) -> u64 {
    let mut ctrl = MemoryController::new(MemCtrlConfig::tiny_for_tests());
    ctrl.service_batch(requests).expect("batch serves");
    ctrl.dram().stats().cycles
}

fn bench_cnn_inference(c: &mut Criterion) {
    let model = model();
    let trace = global_fetch_trace(&model);
    let requests: Vec<dlk_memctrl::MemRequest> = trace.requests().collect();

    print_once(&ARTIFACT, || {
        let mut out = String::from("== CNN weight fetch: serial vs 2-channel sharded ==\n");
        out.push_str(&format!(
            "ResNet-20-shaped victim: {} weight bytes, {} fetch requests ({BATCHES} batches, \
             {CHUNK}-byte chunks)\n",
            model.total_weights(),
            trace.len(),
        ));
        let mut base = None;
        for channels in [1usize, 2] {
            let cycles = replay_once(channels, &trace);
            let reference = *base.get_or_insert(cycles);
            out.push_str(&format!(
                "  {channels} channel(s): {cycles:>7} device cycles (speedup {:.2}x)\n",
                reference as f64 / cycles as f64
            ));
        }
        // The controller's one-pass batch path must match the
        // per-request reference cycle-for-cycle (stats parity is the
        // service_batch contract).
        let mut per_request = MemoryController::new(MemCtrlConfig::tiny_for_tests());
        for request in &requests {
            per_request.service(request.clone()).expect("request serves");
        }
        out.push_str(&format!(
            "  batched fetch: {} cycles, per-request reference: {} cycles (identical)\n",
            batched_once(&requests),
            per_request.dram().stats().cycles,
        ));
        out
    });

    let mut group = c.benchmark_group("cnn_inference");
    group.sample_size(10);
    for channels in [1usize, 2] {
        group.bench_function(format!("fetch_{channels}ch"), |b| {
            b.iter(|| replay_once(channels, &trace))
        });
    }
    group.bench_function("fetch_batched_ctrl", |b| b.iter(|| batched_once(&requests)));
    group.finish();
}

criterion_group!(benches, bench_cnn_inference);
criterion_main!(benches);
