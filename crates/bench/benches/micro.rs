//! Micro-benchmarks of the substrate primitives: DRAM command issue,
//! RowClone vs PSM copies, hammer tracking and the defense trackers.

use criterion::{criterion_group, criterion_main, Criterion};

use dlk_defenses::{CounterPerRow, Graphene, Hydra, RowTracker, Twice};
use dlk_dram::{DramCommand, DramConfig, DramDevice, RowAddr, RowId};
use dlk_memctrl::{MemCtrlConfig, MemRequest, MemoryController};

fn bench_dram(c: &mut Criterion) {
    let mut group = c.benchmark_group("dram");
    group.bench_function("act_pre_pair", |b| {
        let mut dram = DramDevice::new(DramConfig::tiny_for_tests());
        let row = RowAddr::new(0, 0, 5);
        b.iter(|| {
            dram.issue(DramCommand::Act(row)).expect("act");
            dram.issue(DramCommand::Pre(0)).expect("pre")
        })
    });
    group.bench_function("rowclone_fpm", |b| {
        let mut dram = DramDevice::new(DramConfig::tiny_for_tests());
        let src = RowAddr::new(0, 0, 1);
        let dst = RowAddr::new(0, 0, 2);
        b.iter(|| dram.row_clone(src, dst).expect("aap"))
    });
    group.bench_function("rowclone_psm", |b| {
        let mut dram = DramDevice::new(DramConfig::tiny_for_tests());
        let src = RowAddr::new(0, 0, 1);
        let dst = RowAddr::new(1, 1, 2);
        b.iter(|| dram.row_clone(src, dst).expect("psm"))
    });
    group.finish();
}

fn bench_controller(c: &mut Criterion) {
    let mut group = c.benchmark_group("controller");
    group.bench_function("serve_read_row_hit", |b| {
        let mut ctrl = MemoryController::new(MemCtrlConfig::tiny_for_tests());
        ctrl.service(MemRequest::write(0, vec![1, 2, 3, 4])).expect("seed");
        b.iter(|| ctrl.service(MemRequest::read(0, 4)).expect("read"))
    });
    group.finish();
}

fn bench_trackers(c: &mut Criterion) {
    let mut group = c.benchmark_group("trackers");
    group.bench_function("graphene_on_activate", |b| {
        let mut tracker = Graphene::new(1024, 1_000_000);
        let mut row = 0u64;
        b.iter(|| {
            row = (row + 1) % 4096;
            tracker.on_activate(RowId(row))
        })
    });
    group.bench_function("hydra_on_activate", |b| {
        let mut tracker = Hydra::for_threshold(1_000_000);
        let mut row = 0u64;
        b.iter(|| {
            row = (row + 1) % 4096;
            tracker.on_activate(RowId(row))
        })
    });
    group.bench_function("twice_on_activate", |b| {
        let mut tracker = Twice::for_threshold(1_000_000);
        let mut row = 0u64;
        b.iter(|| {
            row = (row + 1) % 4096;
            tracker.on_activate(RowId(row))
        })
    });
    group.bench_function("counter_per_row_on_activate", |b| {
        let mut tracker = CounterPerRow::new(1_000_000);
        let mut row = 0u64;
        b.iter(|| {
            row = (row + 1) % 4096;
            tracker.on_activate(RowId(row))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_dram, bench_controller, bench_trackers);
criterion_main!(benches);
