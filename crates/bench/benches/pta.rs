//! Regenerates the §V PTA evaluation and benchmarks a page walk
//! through the DRAM-resident page table.

use std::sync::Once;

use criterion::{criterion_group, criterion_main, Criterion};

use dlk_bench::print_once;
use dlk_dram::{DramConfig, DramDevice};
use dlk_memctrl::{AddressMapper, MappingScheme, PageTable, PageTableConfig, VirtAddr};
use dlk_xlayer::experiments::pta;

static ARTIFACT: Once = Once::new();

fn bench_pta(c: &mut Criterion) {
    print_once(&ARTIFACT, || pta::run().expect("pta experiment runs").to_string());

    let mut dram = DramDevice::new(DramConfig::tiny_for_tests());
    let mapper = AddressMapper::new(*dram.geometry(), MappingScheme::BankSequential);
    let table = PageTable::new(PageTableConfig::tiny_for_tests());
    for vpn in 0..16 {
        table.map(&mut dram, &mapper, vpn, vpn + 8).expect("map");
    }
    let mut group = c.benchmark_group("pta");
    group.bench_function("page_walk", |b| {
        let mut vpn = 0u64;
        b.iter(|| {
            vpn = (vpn + 1) % 16;
            table.translate(&dram, &mapper, VirtAddr(vpn * 256 + 7)).expect("mapped")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pta);
criterion_main!(benches);
