//! The hot-path performance contract: decoded-instructions/sec,
//! lock-table probes/sec, serviced-requests/sec and GEMM MFLOP/s,
//! each measured against its pre-refactor reference implementation.
//!
//! Unlike the figure benches this one is a throughput pin, not a paper
//! artifact: it prints a table of new-vs-reference ratios and writes
//! the machine-readable snapshot `BENCH_hot_path.json` at the
//! workspace root (see `dlk_bench::snapshot` for the schema). Pass
//! `--fast` (CI) to shorten the measurement windows.

use std::path::Path;
use std::time::{Duration, Instant};

use criterion::black_box;

use dlk_bench::snapshot::Snapshot;
use dlk_dnn::Tensor;
use dlk_dram::RowId;
use dlk_locker::locktable::reference::ScanLockTable;
use dlk_locker::{CompiledProgram, Instruction, LockTable};
use dlk_memctrl::{MemCtrlConfig, MemRequest, MemoryController};

/// Measured iterations/sec of `f`: the best of three wall-clock
/// windows. A single window absorbs whatever the host scheduler does
/// to it — on a shared single-vCPU box one preemption can halve the
/// reported rate — so the pin records the least-interfered window,
/// which is the measurement that actually reflects the code.
fn throughput(window: Duration, mut f: impl FnMut()) -> f64 {
    f(); // warm caches and lazy state once, untimed
    let mut best = 0.0f64;
    for _ in 0..3 {
        let start = Instant::now();
        let mut iters = 0u64;
        let rate = loop {
            f();
            iters += 1;
            let elapsed = start.elapsed();
            if elapsed >= window {
                break iters as f64 / elapsed.as_secs_f64();
            }
        };
        best = best.max(rate);
    }
    best
}

/// A canonical word stream: the SWAP-loop shape (copy bursts, a
/// counted branch, `done`) tiled to `len` instructions.
fn word_stream(len: usize) -> Vec<u16> {
    let mut words = Vec::with_capacity(len);
    for i in 0..len.saturating_sub(1) {
        let word = match i % 4 {
            0 => Instruction::Copy { dst: (i % 128) as u8, src: ((i + 1) % 128) as u8 },
            1 => Instruction::Copy { dst: ((i + 2) % 128) as u8, src: (i % 128) as u8 },
            2 => Instruction::Bnez { reg: (i % 128) as u8, target: 0 },
            _ => Instruction::Copy { dst: 3, src: 4 },
        };
        words.push(word.encode());
    }
    words.push(Instruction::Done.encode());
    words
}

fn bench_decode(window: Duration, snap: &mut Snapshot) -> (f64, f64) {
    let words = word_stream(4096);
    let n = words.len() as f64;
    let new_per_s = throughput(window, || {
        black_box(CompiledProgram::from_words(black_box(&words)).expect("canonical stream"));
    }) * n;
    let ref_per_s = throughput(window, || {
        let decoded: Result<Vec<Instruction>, _> =
            black_box(&words).iter().map(|&w| Instruction::decode_reference(w)).collect();
        black_box(decoded.expect("canonical stream"));
    }) * n;
    snap.metric("decode_minstr_per_s", new_per_s / 1e6, "M/s");
    snap.metric("decode_reference_minstr_per_s", ref_per_s / 1e6, "M/s");
    snap.speedup("decode_vs_reference", new_per_s / ref_per_s);
    (new_per_s, ref_per_s)
}

fn bench_probe(window: Duration, snap: &mut Snapshot) -> (f64, f64) {
    const CAPACITY: usize = 1024;
    const PROBES: u64 = 4096;
    let mut table = LockTable::new(CAPACITY);
    let mut scan = ScanLockTable::new(CAPACITY);
    for row in 0..CAPACITY as u64 / 2 {
        table.lock(RowId(row * 3)).expect("capacity");
        scan.lock(RowId(row * 3)).expect("capacity");
    }
    // Same ~50/50 hit/miss probe tape for both tables.
    let new_per_s = throughput(window, || {
        let mut hits = 0u64;
        for probe in 0..PROBES {
            hits += u64::from(table.is_locked(RowId((probe * 3) % 4096)));
        }
        black_box(hits);
    }) * PROBES as f64;
    let ref_per_s = throughput(window, || {
        let mut hits = 0u64;
        for probe in 0..PROBES {
            hits += u64::from(scan.is_locked(RowId((probe * 3) % 4096)));
        }
        black_box(hits);
    }) * PROBES as f64;
    snap.metric("probe_mprobe_per_s", new_per_s / 1e6, "M/s");
    snap.metric("probe_scan_reference_mprobe_per_s", ref_per_s / 1e6, "M/s");
    snap.speedup("probe_vs_scan_reference", new_per_s / ref_per_s);
    (new_per_s, ref_per_s)
}

fn bench_service(window: Duration, snap: &mut Snapshot) -> (f64, f64) {
    let mut ctrl = MemoryController::new(MemCtrlConfig::tiny_for_tests());
    let row_bytes = 64u64; // DramGeometry::tiny()
    let batch: Vec<MemRequest> = (0..256)
        .map(|i| {
            let addr = (i as u64 % 128) * row_bytes;
            if i % 4 == 3 {
                MemRequest::write(addr, vec![i as u8; 8])
            } else {
                MemRequest::read(addr, 8)
            }
        })
        .collect();
    let n = batch.len() as f64;
    let batch_per_s = throughput(window, || {
        black_box(ctrl.service_batch(black_box(&batch)).expect("valid batch"));
    }) * n;
    let mut ctrl2 = MemoryController::new(MemCtrlConfig::tiny_for_tests());
    let single_per_s = throughput(window, || {
        let done: Vec<_> =
            batch.iter().map(|request| ctrl2.service(request.clone()).expect("valid")).collect();
        black_box(done);
    }) * n;
    snap.metric("service_batch_kreq_per_s", batch_per_s / 1e3, "k/s");
    snap.metric("service_per_request_kreq_per_s", single_per_s / 1e3, "k/s");
    snap.speedup("service_batch_vs_per_request", batch_per_s / single_per_s);
    (batch_per_s, single_per_s)
}

fn bench_gemm(window: Duration, snap: &mut Snapshot) -> (f64, f64) {
    // The im2col shape of the CNN victim: activations (rows of
    // patches) times a transposed weight matrix.
    let (m, k, n) = (64, 128, 32);
    let a = Tensor::randn(m, k, 11);
    let b = Tensor::randn(n, k, 12);
    let flop = (2 * m * k * n) as f64;
    let new_flop_per_s = throughput(window, || {
        black_box(black_box(&a).matmul_transpose(black_box(&b)).expect("shapes"));
    }) * flop;
    let ref_flop_per_s = throughput(window, || {
        black_box(black_box(&a).matmul_transpose_reference(black_box(&b)).expect("shapes"));
    }) * flop;
    snap.metric("gemm_mflop_per_s", new_flop_per_s / 1e6, "MFLOP/s");
    snap.metric("gemm_reference_mflop_per_s", ref_flop_per_s / 1e6, "MFLOP/s");
    snap.speedup("gemm_vs_reference", new_flop_per_s / ref_flop_per_s);
    (new_flop_per_s, ref_flop_per_s)
}

fn main() {
    let fast = std::env::args().any(|arg| arg == "--fast");
    let window = if fast { Duration::from_millis(40) } else { Duration::from_millis(400) };
    let mut snap = Snapshot::new("hot_path");

    let (decode_new, decode_ref) = bench_decode(window, &mut snap);
    let (probe_new, probe_ref) = bench_probe(window, &mut snap);
    let (service_batch, service_single) = bench_service(window, &mut snap);
    let (gemm_new, gemm_ref) = bench_gemm(window, &mut snap);

    println!("hot_path ({} mode)", if fast { "fast" } else { "full" });
    println!("{:-<66}", "");
    println!("{:<28} {:>12} {:>12} {:>8}", "loop", "new", "reference", "ratio");
    let row = |name: &str, new: f64, reference: f64, unit: &str| {
        println!(
            "{name:<28} {:>12.1} {:>12.1} {:>7.2}x  ({unit})",
            new,
            reference,
            new / reference
        );
    };
    row("decode (M instr/s)", decode_new / 1e6, decode_ref / 1e6, "CompiledProgram vs match");
    row("probe (M probes/s)", probe_new / 1e6, probe_ref / 1e6, "open-addressed vs scan");
    row("service (k req/s)", service_batch / 1e3, service_single / 1e3, "batch vs per-request");
    row("gemm (MFLOP/s)", gemm_new / 1e6, gemm_ref / 1e6, "blocked vs scalar dot");

    // Anchor the snapshot at the workspace root regardless of the CWD
    // cargo chose for the bench binary.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let out = root.canonicalize().unwrap_or(root).join("BENCH_hot_path.json");
    snap.write(&out).expect("snapshot write");
    println!("snapshot -> {}", out.display());
}
