//! Wall-clock scaling of the spec-driven sweep runner.
//!
//! The channel × defense acceptance grid runs twice — every spec
//! serially on one thread, then across worker threads — and the
//! artifact records both the grid's metrics table (markdown) and the
//! serial/parallel agreement. Only the runner is being measured: the
//! scenarios are identical specs resolved from the same catalog data.

use std::sync::Once;

use criterion::{criterion_group, criterion_main, Criterion};

use dlk_bench::print_once;
use dlk_sim::metrics;
use dlk_sim::sweep::SweepRunner;
use dlk_xlayer::experiments::defense_grid;

static ARTIFACT: Once = Once::new();

fn bench_sweep(c: &mut Criterion) {
    print_once(&ARTIFACT, || {
        let specs = defense_grid::specs().expect("grid expands");
        let serial = SweepRunner::serial().run_reports(&specs).expect("serial sweep runs");
        let parallel = SweepRunner::parallel().run_reports(&specs).expect("parallel sweep runs");
        assert_eq!(serial, parallel, "sweep determinism");
        let mut out = String::from("== Spec sweep: {1,2,4 channels} x {none, dram-locker} ==\n");
        out.push_str(&format!(
            "{} specs, parallel runner on {} threads, reports bit-identical to serial\n\n",
            specs.len(),
            SweepRunner::parallel().threads()
        ));
        out.push_str(&metrics::Table::from_reports(&serial).to_markdown());
        out
    });

    let specs = defense_grid::specs().expect("grid expands");
    let mut group = c.benchmark_group("sweep");
    group.sample_size(10);
    group.bench_function("serial_1thread", |b| {
        b.iter(|| SweepRunner::serial().run_reports(&specs).expect("sweep runs"))
    });
    group.bench_function("parallel_4threads", |b| {
        b.iter(|| SweepRunner::with_threads(4).run_reports(&specs).expect("sweep runs"))
    });
    group.finish();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
