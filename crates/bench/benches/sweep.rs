//! Wall-clock scaling of the spec-driven sweep runner, as a pinned
//! throughput contract.
//!
//! The channel × defense acceptance grid runs twice — every spec
//! serially on one thread, then across the work-stealing queue — and
//! must agree bit-for-bit. The artifact records the grid's metrics
//! table (markdown) plus a machine-readable `BENCH_sweep.json`
//! snapshot at the workspace root (see `dlk_bench::snapshot` for the
//! schema): serial vs parallel specs/s and the bare queue's jobs/s on
//! no-op jobs, which prices the scheduling machinery itself —
//! injector, deques, stealing, slot bookkeeping — with no scenario
//! work to hide behind. Pass `--fast` (CI) to shorten the windows.

use std::path::Path;
use std::time::{Duration, Instant};

use dlk_bench::snapshot::Snapshot;
use dlk_sim::metrics;
use dlk_sim::sweep::SweepRunner;
use dlk_sim::{RunReport, ScenarioSpec, SimError};
use dlk_xlayer::experiments::defense_grid;

/// Best-of-`reps` wall-clock for `f`, as runs/sec scaled by `work`.
fn best_throughput(reps: usize, work: f64, mut f: impl FnMut()) -> f64 {
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed());
    }
    work / best.as_secs_f64()
}

fn bench_grid(reps: usize, specs: &[ScenarioSpec], snap: &mut Snapshot) -> (f64, f64) {
    let n = specs.len() as f64;
    let serial_per_s = best_throughput(reps, n, || {
        SweepRunner::serial().run_reports(specs).expect("serial sweep runs");
    });
    let parallel_per_s = best_throughput(reps, n, || {
        SweepRunner::parallel().run_reports(specs).expect("parallel sweep runs");
    });
    snap.metric("serial_specs_per_s", serial_per_s, "specs/s");
    snap.metric("parallel_specs_per_s", parallel_per_s, "specs/s");
    snap.speedup("parallel_vs_serial", parallel_per_s / serial_per_s);
    (serial_per_s, parallel_per_s)
}

fn bench_queue(reps: usize, jobs: usize, snap: &mut Snapshot) -> f64 {
    // No-op jobs: every microsecond measured here is queue overhead.
    let runner = SweepRunner::parallel();
    let jobs_per_s = best_throughput(reps, jobs as f64, || {
        let outcomes = runner
            .run_fn(jobs, |index| -> Result<RunReport, SimError> {
                Err(SimError::Build(format!("noop {index}")))
            })
            .len();
        assert_eq!(outcomes, jobs);
    });
    snap.metric("queue_jobs_per_s", jobs_per_s, "jobs/s");
    jobs_per_s
}

fn main() {
    let fast = std::env::args().any(|arg| arg == "--fast");
    let (reps, queue_jobs) = if fast { (2, 2_000) } else { (5, 20_000) };
    let mut snap = Snapshot::new("sweep");

    let specs = defense_grid::specs().expect("grid expands");
    let serial = SweepRunner::serial().run_reports(&specs).expect("serial sweep runs");
    let parallel = SweepRunner::parallel().run_reports(&specs).expect("parallel sweep runs");
    assert_eq!(serial, parallel, "sweep determinism");

    println!("== Spec sweep: {{1,2,4 channels}} x {{none, dram-locker}} ==");
    println!(
        "{} specs, parallel runner on {} threads, reports bit-identical to serial\n",
        specs.len(),
        SweepRunner::parallel().threads()
    );
    println!("{}", metrics::Table::from_reports(&serial).to_markdown());

    let (serial_per_s, parallel_per_s) = bench_grid(reps, &specs, &mut snap);
    let queue_per_s = bench_queue(reps, queue_jobs, &mut snap);

    println!("sweep ({} mode)", if fast { "fast" } else { "full" });
    println!("{:-<56}", "");
    println!("{:<28} {:>14.1} specs/s", "serial runner", serial_per_s);
    println!(
        "{:<28} {:>14.1} specs/s ({:.2}x)",
        "work-stealing runner",
        parallel_per_s,
        parallel_per_s / serial_per_s
    );
    println!("{:<28} {:>14.0} jobs/s  (no-op jobs)", "bare queue", queue_per_s);

    // Anchor the snapshot at the workspace root regardless of the CWD
    // cargo chose for the bench binary.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let out = root.canonicalize().unwrap_or(root).join("BENCH_sweep.json");
    snap.write(&out).expect("snapshot write");
    println!("snapshot -> {}", out.display());
}
