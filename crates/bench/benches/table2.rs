//! Regenerates Table II (DRAM-Locker vs training-based defenses) and
//! benchmarks the weight-reconstruction repair pass.

use std::sync::Once;

use criterion::{criterion_group, criterion_main, Criterion};

use dlk_bench::print_once;
use dlk_defenses::training::transforms::WeightReconstruction;
use dlk_dnn::models;
use dlk_xlayer::experiments::{table2, Fidelity};

static ARTIFACT: Once = Once::new();

fn bench_table2(c: &mut Criterion) {
    print_once(&ARTIFACT, || table2::run(Fidelity::Full).to_string());

    let victim = models::victim_tiny(2);
    let envelope = WeightReconstruction::envelope(&victim.model);
    let defense = WeightReconstruction::default();
    let mut group = c.benchmark_group("table2");
    group.sample_size(20);
    group.bench_function("weight_reconstruction_repair", |b| {
        let mut model = victim.model.clone();
        b.iter(|| defense.repair(&mut model, &envelope))
    });
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
