//! Wall-clock trajectory of the paper-figure regenerations, pinned as
//! a machine-readable snapshot.
//!
//! Each `fig*`/`table*` experiment is regenerated end to end and its
//! best-of-N wall time recorded into `BENCH_figures.json` at the
//! workspace root (shared observability schema, `kind: "bench"`).
//! Unlike the per-primitive criterion benches, this tracks the cost of
//! producing the artifacts themselves — so a regression anywhere in
//! the stack (DRAM model, engine, attacks, DNN kernels) shows up as a
//! figure getting slower across PRs. Pass `--fast` (CI) to run the
//! test-fidelity variants and fewer reps.

use std::path::Path;
use std::time::{Duration, Instant};

use dlk_bench::snapshot::Snapshot;
use dlk_xlayer::experiments::{fig1a, fig1b, fig7a, fig7b, fig8, table1, table2, Fidelity};

/// Best-of-`reps` wall-clock seconds for `f`.
fn best_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed());
    }
    best.as_secs_f64()
}

fn record(snap: &mut Snapshot, reps: usize, name: &str, f: impl FnMut()) -> f64 {
    let secs = best_secs(reps, f);
    snap.metric(name, secs * 1e3, "ms");
    secs
}

fn main() {
    let fast = std::env::args().any(|arg| arg == "--fast");
    let (reps, fidelity) = if fast { (2, Fidelity::Fast) } else { (3, Fidelity::Full) };
    let mut snap = Snapshot::new("figures");

    println!("== Figure regeneration trajectory ({} mode) ==", if fast { "fast" } else { "full" });
    println!("{:-<48}", "");
    let mut total = 0.0;
    let mut show = |name: &str, secs: f64| {
        total += secs;
        println!("{:<28} {:>12.1} ms", name, secs * 1e3);
    };

    show(
        "fig1a_wall_ms",
        record(&mut snap, reps, "fig1a_wall_ms", || {
            fig1a::run(fidelity).render();
        }),
    );
    show(
        "fig1b_wall_ms",
        record(&mut snap, reps, "fig1b_wall_ms", || {
            fig1b::run().to_string();
        }),
    );
    show(
        "fig7a_wall_ms",
        record(&mut snap, reps, "fig7a_wall_ms", || {
            fig7a::run(fidelity).render();
        }),
    );
    show(
        "fig7b_wall_ms",
        record(&mut snap, reps, "fig7b_wall_ms", || {
            fig7b::run().to_string();
        }),
    );
    show(
        "fig8_wall_ms",
        record(&mut snap, reps, "fig8_wall_ms", || {
            fig8::run(fidelity);
        }),
    );
    show(
        "table1_wall_ms",
        record(&mut snap, reps, "table1_wall_ms", || {
            table1::run().to_string();
        }),
    );
    show(
        "table2_wall_ms",
        record(&mut snap, reps, "table2_wall_ms", || {
            table2::run(fidelity).to_string();
        }),
    );
    println!("{:<28} {:>12.1} ms", "total", total * 1e3);

    // Anchor the snapshot at the workspace root regardless of the CWD
    // cargo chose for the bench binary.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let out = root.canonicalize().unwrap_or(root).join("BENCH_figures.json");
    snap.write(&out).expect("snapshot write");
    println!("snapshot -> {}", out.display());
}
