//! Regenerates Fig. 1(a) (BFA vs random flips) and Fig. 1(b) (TRH per
//! DRAM generation), then benchmarks one progressive-bit-search step.

use std::sync::Once;

use criterion::{criterion_group, criterion_main, Criterion};

use dlk_attacks::bfa::{BfaConfig, BitSearch};
use dlk_bench::print_once;
use dlk_dnn::models;
use dlk_xlayer::experiments::{fig1a, fig1b, Fidelity};

static ARTIFACT: Once = Once::new();

fn bench_fig1(c: &mut Criterion) {
    print_once(&ARTIFACT, || {
        let mut out = fig1b::run().to_string();
        out.push('\n');
        out.push_str(&fig1a::run(Fidelity::Full).render());
        out
    });

    let victim = models::victim_tiny(1);
    let (x, y) = victim.dataset.test_sample(32, 0);
    let mut group = c.benchmark_group("fig1");
    group.sample_size(10);
    group.bench_function("bfa_next_flip", |b| {
        let mut search = BitSearch::new(BfaConfig::default());
        b.iter(|| search.next_flip(&victim.model, &x, &y))
    });
    group.finish();
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
