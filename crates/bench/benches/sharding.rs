//! Multi-channel scaling of the sharded execution engine: the same
//! global trace replayed over 1, 2 and 4 channel shards stepped on
//! scoped threads. Row-interleaved routing splits the work `1/n` per
//! shard, so wall-clock time should drop as channels are added.
//!
//! The artifact prints measured wall-clock times and speedups once,
//! outside the measured closures; the criterion group then measures
//! each configuration's replay kernel.

use std::sync::Once;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};

use dlk_bench::print_once;
use dlk_engine::{EngineConfig, ShardedEngine, TraceReplay, Workload};
use dlk_memctrl::{MemCtrlConfig, Trace};

static ARTIFACT: Once = Once::new();

/// A mixed workload confined to the single-channel capacity (16 KiB
/// tiny geometry, 256 rows), so the identical global trace is valid on
/// every engine width: three pointer chasers and a streaming pass.
fn global_trace() -> Trace {
    const ROW_BYTES: u64 = 64;
    const SPAN: u64 = 256 * ROW_BYTES;
    Workload::multi_tenant(&[
        Workload::PointerChase { base: 0, span: SPAN, len: 8, count: 12_000, seed: 9 },
        Workload::PointerChase { base: 0, span: SPAN, len: 8, count: 12_000, seed: 10 },
        Workload::PointerChase { base: 0, span: SPAN, len: 8, count: 12_000, seed: 11 },
        Workload::Sequential { base: 0, len: 8, count: 2_000 },
    ])
}

/// Replays the trace on a fresh `channels`-wide engine; returns the
/// simulated device cycles (max over channels — the hardware metric).
fn replay_once(channels: usize, trace: &Trace) -> u64 {
    let mut engine =
        ShardedEngine::new(EngineConfig::sharded(channels), MemCtrlConfig::tiny_for_tests())
            .expect("engine builds");
    engine.replay(TraceReplay::new(trace)).expect("replay runs");
    engine.snapshot().cycles
}

fn bench_sharding(c: &mut Criterion) {
    let trace = global_trace();

    print_once(&ARTIFACT, || {
        let mut out = String::from("== Sharded engine scaling (trace replay) ==\n");
        out.push_str(&format!(
            "trace: {} ops over the shared global address space ({} host cores)\n",
            trace.len(),
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        ));
        let mut wall_base = None;
        let mut cycle_base = None;
        for channels in [1usize, 2, 4] {
            // Warm once, then time a few replays.
            let cycles = replay_once(channels, &trace);
            let start = Instant::now();
            let rounds = 5;
            for _ in 0..rounds {
                replay_once(channels, &trace);
            }
            let per_run = start.elapsed() / rounds;
            let wall = *wall_base.get_or_insert(per_run);
            let cycle = *cycle_base.get_or_insert(cycles);
            out.push_str(&format!(
                "  {channels} channel(s): {per_run:>10.2?} per replay (speedup {:.2}x), \
                 {cycles:>9} device cycles (speedup {:.2}x)\n",
                wall.as_secs_f64() / per_run.as_secs_f64(),
                cycle as f64 / cycles as f64
            ));
        }
        out
    });

    let mut group = c.benchmark_group("sharding");
    group.sample_size(10);
    for channels in [1usize, 2, 4] {
        group.bench_function(format!("replay_{channels}ch"), |b| {
            b.iter(|| replay_once(channels, &trace))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sharding);
criterion_main!(benches);
