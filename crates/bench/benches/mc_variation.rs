//! Regenerates the §IV-D process-variation sweep and benchmarks the
//! Monte-Carlo trial kernel.

use std::sync::Once;

use criterion::{criterion_group, criterion_main, Criterion};

use dlk_bench::print_once;
use dlk_xlayer::circuit::{MonteCarlo, VariationConfig};
use dlk_xlayer::experiments::{mc_variation, Fidelity};

static ARTIFACT: Once = Once::new();

fn bench_mc(c: &mut Criterion) {
    print_once(&ARTIFACT, || mc_variation::run(Fidelity::Full).to_string());

    let mc = MonteCarlo::new(VariationConfig::default());
    let mut group = c.benchmark_group("mc_variation");
    group.bench_function("mc_1000_trials_20pct", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            mc.run(0.20, 1_000, seed)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_mc);
criterion_main!(benches);
