//! Machine-readable bench snapshots (`BENCH_<name>.json`).
//!
//! Benches that pin a performance contract record their headline
//! numbers here so CI (and future sessions) can diff them without
//! scraping stdout. Rendering, validation and the atomic on-disk write
//! all live in the shared [`dlk_obs::json`] layer (schema version 2);
//! this module keeps the bench-facing `Snapshot` builder — a `kind:
//! "bench"` document with a `metrics` section (name/value/unit) and a
//! `speedups` section (name/value) — exactly as the benches have
//! always used it.
//!
//! ```json
//! {
//!   "schema_version": 2,
//!   "kind": "bench",
//!   "name": "hot_path",
//!   "build": { ... },
//!   "metrics": [
//!     { "name": "decode_minstr_per_s", "value": 123.4, "unit": "M/s" }
//!   ],
//!   "speedups": [
//!     { "name": "decode_vs_reference", "value": 2.5 }
//!   ]
//! }
//! ```

use std::io;
use std::path::Path;

use dlk_obs::json::{self, Document};

/// The shared well-formedness parser (kept under its historic name).
pub use dlk_obs::json::validate as validate_json;
/// Schema version of the shared JSON layer (re-exported so bench code
/// keeps one import path).
pub use dlk_obs::json::SCHEMA_VERSION;

/// One measured quantity.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Snake-case metric name, e.g. `decode_minstr_per_s`.
    pub name: String,
    /// Measured value (non-finite values are recorded as `0`).
    pub value: f64,
    /// Unit label, e.g. `M/s` or `MFLOP/s`.
    pub unit: String,
}

/// A named new-vs-reference ratio.
#[derive(Debug, Clone, PartialEq)]
pub struct Speedup {
    /// Snake-case ratio name, e.g. `decode_vs_reference`.
    pub name: String,
    /// Throughput ratio (> 1 means the new path is faster).
    pub value: f64,
}

/// An in-memory bench snapshot, serialized with [`Snapshot::to_json`].
#[derive(Debug, Clone)]
pub struct Snapshot {
    bench: String,
    metrics: Vec<Metric>,
    speedups: Vec<Speedup>,
}

impl Snapshot {
    /// Starts an empty snapshot for the named bench.
    pub fn new(bench: impl Into<String>) -> Self {
        Self { bench: bench.into(), metrics: Vec::new(), speedups: Vec::new() }
    }

    /// Records a measured metric.
    pub fn metric(&mut self, name: &str, value: f64, unit: &str) -> &mut Self {
        self.metrics.push(Metric { name: name.into(), value, unit: unit.into() });
        self
    }

    /// Records a new-vs-reference speedup ratio.
    pub fn speedup(&mut self, name: &str, value: f64) -> &mut Self {
        self.speedups.push(Speedup { name: name.into(), value });
        self
    }

    /// Lowers the snapshot onto the shared schema-v2 document (both
    /// sections always present, possibly empty).
    pub fn to_document(&self) -> Document {
        let mut doc = Document::new("bench", &self.bench);
        doc.section("metrics");
        doc.section("speedups");
        for metric in &self.metrics {
            doc.push_object(
                "metrics",
                &[
                    ("name", json::escape(&metric.name)),
                    ("value", json::number(metric.value)),
                    ("unit", json::escape(&metric.unit)),
                ],
            );
        }
        for speedup in &self.speedups {
            doc.push_object(
                "speedups",
                &[("name", json::escape(&speedup.name)), ("value", json::number(speedup.value))],
            );
        }
        doc
    }

    /// Renders the snapshot as a JSON document.
    pub fn to_json(&self) -> String {
        self.to_document().to_json()
    }

    /// Serializes and writes `BENCH_<bench>.json`-style output to
    /// `path` atomically (temp file + rename), validating the JSON
    /// first.
    ///
    /// # Errors
    ///
    /// Returns any filesystem error; an invalid render (a bug in the
    /// shared JSON layer) surfaces as [`io::ErrorKind::InvalidData`].
    pub fn write(&self, path: impl AsRef<Path>) -> io::Result<()> {
        self.to_document().write(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    #[test]
    fn snapshot_json_is_valid_and_carries_fields() {
        let mut snap = Snapshot::new("hot_path");
        snap.metric("decode_minstr_per_s", 123.456, "M/s");
        snap.metric("gemm_mflop_per_s", 789.0, "MFLOP/s");
        snap.speedup("decode_vs_reference", 2.4);
        let json = snap.to_json();
        validate_json(&json).expect("snapshot JSON must parse");
        assert!(json.contains("\"schema_version\": 2"));
        assert!(json.contains("\"kind\": \"bench\""));
        assert!(json.contains("\"name\": \"hot_path\""));
        assert!(json.contains("\"decode_minstr_per_s\""));
        assert!(json.contains("\"unit\": \"MFLOP/s\""));
        assert!(json.contains("\"decode_vs_reference\""));
        assert!(json.contains("\"profile\""));
    }

    #[test]
    fn empty_snapshot_is_valid() {
        let json = Snapshot::new("empty").to_json();
        validate_json(&json).expect("empty snapshot must parse");
        assert!(json.contains("\"metrics\": []"));
        assert!(json.contains("\"speedups\": []"));
    }

    #[test]
    fn non_finite_metrics_serialize_as_zero() {
        let mut snap = Snapshot::new("nan");
        snap.metric("bad", f64::NAN, "x").metric("inf", f64::INFINITY, "x");
        let json = snap.to_json();
        validate_json(&json).expect("non-finite values must not break JSON");
        assert!(json.contains("\"value\": 0,"));
    }

    #[test]
    fn strings_are_escaped() {
        let mut snap = Snapshot::new("quote\"and\\slash\n");
        snap.metric("tab\there", 1.0, "u");
        let json = snap.to_json();
        validate_json(&json).expect("escaped JSON must parse");
        assert!(json.contains("quote\\\"and\\\\slash\\n"));
    }

    #[test]
    fn write_is_atomic_and_valid_on_disk() {
        let dir = std::env::temp_dir().join(format!("dlk_snapshot_test_{}", std::process::id()));
        fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("BENCH_test.json");
        let mut snap = Snapshot::new("test");
        snap.metric("m", 1.0, "u");
        snap.write(&path).expect("write");
        let on_disk = fs::read_to_string(&path).expect("read back");
        validate_json(&on_disk).expect("on-disk JSON parses");
        assert!(!path.with_extension("json.tmp").exists(), "temp file must be renamed away");
        fs::remove_dir_all(&dir).ok();
    }
}
