//! Machine-readable bench snapshots (`BENCH_<name>.json`).
//!
//! Benches that pin a performance contract record their headline
//! numbers here so CI (and future sessions) can diff them without
//! scraping stdout. The JSON is hand-written — the workspace `serde`
//! is a marker-only stub — and [`validate_json`] is a minimal
//! well-formedness parser used both in tests and by the bench itself
//! before the file is committed to disk.
//!
//! Schema (`schema_version` 1):
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "bench": "hot_path",
//!   "build": {
//!     "package_version": "0.1.0",
//!     "profile": "release",
//!     "arch": "x86_64",
//!     "os": "linux",
//!     "host_threads": 8,
//!     "unix_time_secs": 1700000000
//!   },
//!   "metrics": [
//!     { "name": "decode_minstr_per_s", "value": 123.4, "unit": "M/s" }
//!   ],
//!   "speedups": [
//!     { "name": "decode_vs_reference", "value": 2.5 }
//!   ]
//! }
//! ```

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;
use std::time::{SystemTime, UNIX_EPOCH};

/// Version stamped into every snapshot; bump when the layout changes.
pub const SCHEMA_VERSION: u32 = 1;

/// One measured quantity.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Snake-case metric name, e.g. `decode_minstr_per_s`.
    pub name: String,
    /// Measured value (non-finite values are recorded as `0`).
    pub value: f64,
    /// Unit label, e.g. `M/s` or `MFLOP/s`.
    pub unit: String,
}

/// A named new-vs-reference ratio.
#[derive(Debug, Clone, PartialEq)]
pub struct Speedup {
    /// Snake-case ratio name, e.g. `decode_vs_reference`.
    pub name: String,
    /// Throughput ratio (> 1 means the new path is faster).
    pub value: f64,
}

/// An in-memory bench snapshot, serialized with [`Snapshot::to_json`].
#[derive(Debug, Clone)]
pub struct Snapshot {
    bench: String,
    metrics: Vec<Metric>,
    speedups: Vec<Speedup>,
}

impl Snapshot {
    /// Starts an empty snapshot for the named bench.
    pub fn new(bench: impl Into<String>) -> Self {
        Self { bench: bench.into(), metrics: Vec::new(), speedups: Vec::new() }
    }

    /// Records a measured metric.
    pub fn metric(&mut self, name: &str, value: f64, unit: &str) -> &mut Self {
        self.metrics.push(Metric { name: name.into(), value, unit: unit.into() });
        self
    }

    /// Records a new-vs-reference speedup ratio.
    pub fn speedup(&mut self, name: &str, value: f64) -> &mut Self {
        self.speedups.push(Speedup { name: name.into(), value });
        self
    }

    /// Renders the snapshot as a JSON document.
    pub fn to_json(&self) -> String {
        let threads = std::thread::available_parallelism().map_or(1, usize::from);
        let unix_time =
            SystemTime::now().duration_since(UNIX_EPOCH).map_or(0, |elapsed| elapsed.as_secs());
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema_version\": {SCHEMA_VERSION},");
        let _ = writeln!(out, "  \"bench\": {},", json_string(&self.bench));
        out.push_str("  \"build\": {\n");
        let _ =
            writeln!(out, "    \"package_version\": {},", json_string(env!("CARGO_PKG_VERSION")));
        let profile = if cfg!(debug_assertions) { "debug" } else { "release" };
        let _ = writeln!(out, "    \"profile\": {},", json_string(profile));
        let _ = writeln!(out, "    \"arch\": {},", json_string(std::env::consts::ARCH));
        let _ = writeln!(out, "    \"os\": {},", json_string(std::env::consts::OS));
        let _ = writeln!(out, "    \"host_threads\": {threads},");
        let _ = writeln!(out, "    \"unix_time_secs\": {unix_time}");
        out.push_str("  },\n");
        out.push_str("  \"metrics\": [");
        for (i, metric) in self.metrics.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {{ \"name\": {}, \"value\": {}, \"unit\": {} }}",
                json_string(&metric.name),
                json_number(metric.value),
                json_string(&metric.unit)
            );
        }
        out.push_str(if self.metrics.is_empty() { "],\n" } else { "\n  ],\n" });
        out.push_str("  \"speedups\": [");
        for (i, speedup) in self.speedups.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {{ \"name\": {}, \"value\": {} }}",
                json_string(&speedup.name),
                json_number(speedup.value)
            );
        }
        out.push_str(if self.speedups.is_empty() { "]\n" } else { "\n  ]\n" });
        out.push_str("}\n");
        out
    }

    /// Serializes and writes `BENCH_<bench>.json`-style output to
    /// `path` atomically (temp file + rename), validating the JSON
    /// first.
    ///
    /// # Errors
    ///
    /// Returns any filesystem error; an invalid render (a bug in this
    /// module) surfaces as [`io::ErrorKind::InvalidData`].
    pub fn write(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        let json = self.to_json();
        validate_json(&json).map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err))?;
        let tmp = path.with_extension("json.tmp");
        fs::write(&tmp, &json)?;
        fs::rename(&tmp, path)
    }
}

/// Escapes a string for JSON embedding (quotes included).
fn json_string(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len() + 2);
    out.push('"');
    for ch in raw.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an `f64` as a JSON number; non-finite values become `0`
/// (JSON has no NaN/Infinity).
fn json_number(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else {
        "0".to_string()
    }
}

/// Checks that `text` is a single well-formed JSON value. Not a full
/// deserializer — the workspace has no real serde — just enough of a
/// recursive-descent parser to reject anything `json.tool` would.
///
/// # Errors
///
/// Returns a human-readable description of the first syntax error.
pub fn validate_json(text: &str) -> Result<(), String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(())
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos),
        Some(b't') => parse_literal(bytes, pos, b"true"),
        Some(b'f') => parse_literal(bytes, pos, b"false"),
        Some(b'n') => parse_literal(bytes, pos, b"null"),
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        Some(other) => Err(format!("unexpected byte {other:#04x} at offset {pos}", pos = *pos)),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume '{'
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at offset {pos}", pos = *pos));
        }
        parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at offset {pos}", pos = *pos));
        }
        *pos += 1;
        parse_value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at offset {pos}", pos = *pos)),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume '['
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        parse_value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at offset {pos}", pos = *pos)),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume opening quote
    while let Some(&byte) = bytes.get(*pos) {
        match byte {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                let escape = bytes.get(*pos + 1).copied();
                match escape {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 2,
                    Some(b'u') => {
                        let hex = bytes.get(*pos + 2..*pos + 6).ok_or("truncated \\u escape")?;
                        if !hex.iter().all(u8::is_ascii_hexdigit) {
                            return Err(format!("bad \\u escape at offset {pos}", pos = *pos));
                        }
                        *pos += 6;
                    }
                    _ => return Err(format!("bad escape at offset {pos}", pos = *pos)),
                }
            }
            0x00..=0x1F => {
                return Err(format!("raw control byte in string at offset {pos}", pos = *pos))
            }
            _ => *pos += 1,
        }
    }
    Err("unterminated string".into())
}

fn parse_literal(bytes: &[u8], pos: &mut usize, expected: &[u8]) -> Result<(), String> {
    if bytes.get(*pos..*pos + expected.len()) == Some(expected) {
        *pos += expected.len();
        Ok(())
    } else {
        Err(format!("bad literal at offset {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits_from = |bytes: &[u8], pos: &mut usize| {
        let begin = *pos;
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
        *pos > begin
    };
    if !digits_from(bytes, pos) {
        return Err(format!("bad number at offset {start}"));
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits_from(bytes, pos) {
            return Err(format!("bad fraction at offset {start}"));
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !digits_from(bytes, pos) {
            return Err(format!("bad exponent at offset {start}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_json_is_valid_and_carries_fields() {
        let mut snap = Snapshot::new("hot_path");
        snap.metric("decode_minstr_per_s", 123.456, "M/s");
        snap.metric("gemm_mflop_per_s", 789.0, "MFLOP/s");
        snap.speedup("decode_vs_reference", 2.4);
        let json = snap.to_json();
        validate_json(&json).expect("snapshot JSON must parse");
        assert!(json.contains("\"schema_version\": 1"));
        assert!(json.contains("\"bench\": \"hot_path\""));
        assert!(json.contains("\"decode_minstr_per_s\""));
        assert!(json.contains("\"unit\": \"MFLOP/s\""));
        assert!(json.contains("\"decode_vs_reference\""));
        assert!(json.contains("\"profile\""));
    }

    #[test]
    fn empty_snapshot_is_valid() {
        let json = Snapshot::new("empty").to_json();
        validate_json(&json).expect("empty snapshot must parse");
        assert!(json.contains("\"metrics\": []"));
        assert!(json.contains("\"speedups\": []"));
    }

    #[test]
    fn non_finite_metrics_serialize_as_zero() {
        let mut snap = Snapshot::new("nan");
        snap.metric("bad", f64::NAN, "x").metric("inf", f64::INFINITY, "x");
        let json = snap.to_json();
        validate_json(&json).expect("non-finite values must not break JSON");
        assert!(json.contains("\"value\": 0,"));
    }

    #[test]
    fn strings_are_escaped() {
        let mut snap = Snapshot::new("quote\"and\\slash\n");
        snap.metric("tab\there", 1.0, "u");
        let json = snap.to_json();
        validate_json(&json).expect("escaped JSON must parse");
        assert!(json.contains("quote\\\"and\\\\slash\\n"));
    }

    #[test]
    fn validator_accepts_json_corpus() {
        for good in [
            "null",
            "true",
            " false ",
            "0",
            "-12.5e+3",
            "\"str \\u00e9\"",
            "[]",
            "[1, [2, {\"a\": null}]]",
            "{\"k\": \"v\", \"n\": [1.5, -2]}",
        ] {
            validate_json(good).unwrap_or_else(|err| panic!("{good}: {err}"));
        }
    }

    #[test]
    fn validator_rejects_malformed_json() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "{\"a\": 1,}",
            "nul",
            "01x",
            "\"unterminated",
            "\"bad \\q escape\"",
            "1 2",
            "{'a': 1}",
            "[1] trailing",
        ] {
            assert!(validate_json(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn write_is_atomic_and_valid_on_disk() {
        let dir = std::env::temp_dir().join(format!("dlk_snapshot_test_{}", std::process::id()));
        fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("BENCH_test.json");
        let mut snap = Snapshot::new("test");
        snap.metric("m", 1.0, "u");
        snap.write(&path).expect("write");
        let on_disk = fs::read_to_string(&path).expect("read back");
        validate_json(&on_disk).expect("on-disk JSON parses");
        assert!(!path.with_extension("json.tmp").exists(), "temp file must be renamed away");
        fs::remove_dir_all(&dir).ok();
    }
}
