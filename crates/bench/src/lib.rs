//! # dlk-bench — benchmark harness
//!
//! Criterion benches regenerating every table and figure of the
//! DRAM-Locker paper, plus micro-benchmarks and ablations. Each bench
//! prints its artifact once (the rows/series the paper reports) and
//! then measures a representative kernel.
//!
//! Run everything with `cargo bench --workspace`; individual artifacts
//! with e.g. `cargo bench -p dlk-bench --bench fig7`.

use std::sync::Once;

pub mod diff;
pub mod snapshot;

/// Prints a block of experiment output exactly once per process, so
/// Criterion's iteration loop doesn't repeat multi-line artifacts.
pub fn print_once(once: &'static Once, artifact: impl FnOnce() -> String) {
    once.call_once(|| println!("{}", artifact()));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn print_once_runs_single_time() {
        static ONCE: Once = Once::new();
        let mut calls = 0;
        for _ in 0..3 {
            print_once(&ONCE, || {
                calls += 1;
                String::new()
            });
        }
        assert_eq!(calls, 1);
    }
}
