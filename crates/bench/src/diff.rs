//! Structural comparison of two schema-v2 snapshot documents.
//!
//! `dlk bench diff old.json new.json` lands here: both documents are
//! parsed with the shared [`dlk_obs::json`] reader, every array
//! section (`metrics`, `speedups`, `counters`, `histograms`, ...) is
//! aligned by member `name`, and each numeric field becomes a
//! [`Delta`] with a percent change. A direction heuristic classifies
//! each row as higher-is-better (throughput, speedups) or
//! lower-is-better (anything measured in time units or named like a
//! latency), so [`Diff::regressions`] can flag only changes in the bad
//! direction — the CI regression gate is `--check --max-regress PCT`
//! over exactly that list.

use dlk_obs::json::Value;

/// One aligned numeric field that exists in both documents.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    /// Section the row came from (`metrics`, `speedups`, ...).
    pub section: String,
    /// Display name: the member name, suffixed with the field for
    /// multi-valued members (`memctrl.latency.p95`).
    pub name: String,
    /// Unit label from the old document (empty when absent).
    pub unit: String,
    /// Value in the old (baseline) document.
    pub old: f64,
    /// Value in the new (candidate) document.
    pub new: f64,
}

impl Delta {
    /// Signed percent change relative to the baseline. A zero baseline
    /// maps to `0` (no change) or `±inf` (something appeared from or
    /// collapsed to zero).
    pub fn pct(&self) -> f64 {
        if self.old == 0.0 {
            if self.new == 0.0 {
                0.0
            } else if self.new > 0.0 {
                f64::INFINITY
            } else {
                f64::NEG_INFINITY
            }
        } else {
            (self.new - self.old) / self.old.abs() * 100.0
        }
    }

    /// True when smaller values are better for this row: time units
    /// (`ns`/`us`/`ms`/`s`) or names that read as a latency. Everything
    /// else (throughput, speedup ratios, counts) is higher-is-better.
    pub fn lower_is_better(&self) -> bool {
        matches!(self.unit.as_str(), "ns" | "us" | "ms" | "s")
            || self.name.contains("wall")
            || self.name.contains("latency")
    }

    /// Percent moved in the *bad* direction, or `None` when the change
    /// is neutral or an improvement.
    pub fn regression_pct(&self) -> Option<f64> {
        let pct = self.pct();
        let bad = if self.lower_is_better() { pct > 0.0 } else { pct < 0.0 };
        bad.then(|| pct.abs())
    }
}

/// The full comparison of two documents.
#[derive(Debug, Clone, Default)]
pub struct Diff {
    /// `name` field of the baseline document.
    pub old_name: String,
    /// `name` field of the candidate document.
    pub new_name: String,
    /// Rows present in both documents, in baseline section order.
    pub deltas: Vec<Delta>,
    /// `(section, name)` members only the baseline has.
    pub only_old: Vec<(String, String)>,
    /// `(section, name)` members only the candidate has.
    pub only_new: Vec<(String, String)>,
}

impl Diff {
    /// Deltas that moved more than `max_pct` percent in the bad
    /// direction.
    pub fn regressions(&self, max_pct: f64) -> Vec<&Delta> {
        self.deltas.iter().filter(|d| d.regression_pct().is_some_and(|pct| pct > max_pct)).collect()
    }

    /// Renders the aligned delta table. When `max_regress` is given,
    /// rows past the threshold gain a trailing `<< REGRESSION` marker.
    pub fn render(&self, max_regress: Option<f64>) -> String {
        let mut out = String::new();
        out.push_str(&format!("# {} -> {}\n", self.old_name, self.new_name));
        let name_width = self
            .deltas
            .iter()
            .map(|d| d.name.len() + d.section.len() + 1)
            .chain([12])
            .max()
            .unwrap_or(12);
        out.push_str(&format!(
            "{:<name_width$} {:>14} {:>14} {:>9}\n",
            "section/name", "old", "new", "delta"
        ));
        for delta in &self.deltas {
            let label = format!("{}/{}", delta.section, delta.name);
            let mut line = format!(
                "{:<name_width$} {:>14} {:>14} {:>9}",
                label,
                fmt_value(delta.old),
                fmt_value(delta.new),
                fmt_pct(delta.pct()),
            );
            if !delta.unit.is_empty() {
                line.push_str(&format!(" {}", delta.unit));
            }
            if let Some(max) = max_regress {
                if delta.regression_pct().is_some_and(|pct| pct > max) {
                    line.push_str("  << REGRESSION");
                }
            }
            line.push('\n');
            out.push_str(&line);
        }
        for (section, name) in &self.only_old {
            out.push_str(&format!("only in old: {section}/{name}\n"));
        }
        for (section, name) in &self.only_new {
            out.push_str(&format!("only in new: {section}/{name}\n"));
        }
        out
    }
}

fn fmt_value(v: f64) -> String {
    if !v.is_finite() {
        v.to_string()
    } else if v == v.trunc() && v.abs() < 1e12 {
        format!("{v}")
    } else if v.abs() >= 1000.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

fn fmt_pct(pct: f64) -> String {
    if pct.is_infinite() {
        if pct > 0.0 {
            "+inf%".into()
        } else {
            "-inf%".into()
        }
    } else {
        format!("{pct:+.1}%")
    }
}

/// Every top-level array-of-named-objects section, in document order.
fn named_sections(doc: &Value) -> Vec<(&str, Vec<(&str, &Value)>)> {
    let Some(members) = doc.as_object() else { return Vec::new() };
    let mut sections = Vec::new();
    for (key, value) in members {
        let Some(items) = value.as_array() else { continue };
        let named: Vec<(&str, &Value)> =
            items.iter().filter_map(|item| Some((item.get("name")?.as_str()?, item))).collect();
        if !named.is_empty() || !items.is_empty() {
            sections.push((key.as_str(), named));
        }
    }
    sections
}

/// Compares two parsed schema-v2 documents (any kind — bench
/// snapshots, metrics heartbeats). Sections and members follow the
/// baseline's order; candidate-only sections and members are listed in
/// [`Diff::only_new`].
pub fn diff(old: &Value, new: &Value) -> Diff {
    let mut result = Diff {
        old_name: old.get("name").and_then(Value::as_str).unwrap_or("old").to_string(),
        new_name: new.get("name").and_then(Value::as_str).unwrap_or("new").to_string(),
        ..Diff::default()
    };

    let old_sections = named_sections(old);
    let new_sections = named_sections(new);

    for (section, old_members) in &old_sections {
        let new_members: &[(&str, &Value)] = new_sections
            .iter()
            .find(|(name, _)| name == section)
            .map_or(&[], |(_, members)| members.as_slice());
        for (name, old_obj) in old_members {
            let Some((_, new_obj)) = new_members.iter().find(|(n, _)| n == name) else {
                result.only_old.push((section.to_string(), name.to_string()));
                continue;
            };
            let unit = old_obj.get("unit").and_then(Value::as_str).unwrap_or("").to_string();
            let Some(fields) = old_obj.as_object() else { continue };
            for (field, old_field) in fields {
                let Some(old_num) = old_field.as_f64() else { continue };
                let Some(new_num) = new_obj.get(field).and_then(Value::as_f64) else { continue };
                let display =
                    if field == "value" { name.to_string() } else { format!("{name}.{field}") };
                result.deltas.push(Delta {
                    section: section.to_string(),
                    name: display,
                    unit: unit.clone(),
                    old: old_num,
                    new: new_num,
                });
            }
        }
    }

    for (section, new_members) in &new_sections {
        let old_members: &[(&str, &Value)] = old_sections
            .iter()
            .find(|(name, _)| name == section)
            .map_or(&[], |(_, members)| members.as_slice());
        for (name, _) in new_members {
            if !old_members.iter().any(|(n, _)| n == name) {
                result.only_new.push((section.to_string(), name.to_string()));
            }
        }
    }

    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::Snapshot;
    use dlk_obs::json::parse;

    fn snap(pairs: &[(&str, f64, &str)], speedups: &[(&str, f64)]) -> Value {
        let mut snapshot = Snapshot::new("unit");
        for (name, value, unit) in pairs {
            snapshot.metric(name, *value, unit);
        }
        for (name, value) in speedups {
            snapshot.speedup(name, *value);
        }
        parse(&snapshot.to_json()).expect("snapshot JSON parses")
    }

    #[test]
    fn aligns_by_name_and_computes_percent() {
        let old = snap(&[("decode", 100.0, "M/s"), ("gemm", 50.0, "MFLOP/s")], &[("s", 2.0)]);
        let new = snap(&[("gemm", 75.0, "MFLOP/s"), ("decode", 110.0, "M/s")], &[("s", 2.0)]);
        let diff = diff(&old, &new);
        assert_eq!(diff.deltas.len(), 3);
        assert_eq!(diff.deltas[0].name, "decode");
        assert!((diff.deltas[0].pct() - 10.0).abs() < 1e-9);
        assert!((diff.deltas[1].pct() - 50.0).abs() < 1e-9);
        assert_eq!(diff.deltas[2].pct(), 0.0);
        assert!(diff.only_old.is_empty() && diff.only_new.is_empty());
    }

    #[test]
    fn direction_heuristic_flags_only_bad_moves() {
        // Throughput down 20% = regression; latency down 20% = win.
        let old = snap(&[("decode_per_s", 100.0, "M/s"), ("job_wall", 100.0, "us")], &[]);
        let new = snap(&[("decode_per_s", 80.0, "M/s"), ("job_wall", 80.0, "us")], &[]);
        let diff = diff(&old, &new);
        let regressed = diff.regressions(15.0);
        assert_eq!(regressed.len(), 1);
        assert_eq!(regressed[0].name, "decode_per_s");
        assert!(regressed[0].regression_pct().unwrap() > 19.0);
        // Latency *up* 20% regresses too.
        let slower = snap(&[("job_wall", 120.0, "us")], &[]);
        let diff = super::diff(&old, &slower);
        assert_eq!(diff.regressions(15.0).len(), 1);
        assert_eq!(diff.regressions(25.0).len(), 0, "threshold is exclusive");
    }

    #[test]
    fn members_missing_from_either_side_are_reported_not_compared() {
        let old = snap(&[("kept", 1.0, "u"), ("dropped", 2.0, "u")], &[]);
        let new = snap(&[("kept", 1.0, "u"), ("added", 3.0, "u")], &[]);
        let diff = diff(&old, &new);
        assert_eq!(diff.deltas.len(), 1);
        assert_eq!(diff.only_old, [("metrics".to_string(), "dropped".to_string())]);
        assert_eq!(diff.only_new, [("metrics".to_string(), "added".to_string())]);
    }

    #[test]
    fn zero_baseline_renders_infinite_percent_without_panicking() {
        let old = snap(&[("new_counter", 0.0, "u")], &[]);
        let new = snap(&[("new_counter", 7.0, "u")], &[]);
        let diff = diff(&old, &new);
        assert_eq!(diff.deltas[0].pct(), f64::INFINITY);
        assert!(diff.render(None).contains("+inf%"));
    }

    #[test]
    fn render_marks_regressions_past_threshold() {
        let old = snap(&[("decode_per_s", 100.0, "M/s")], &[]);
        let new = snap(&[("decode_per_s", 50.0, "M/s")], &[]);
        let diff = diff(&old, &new);
        let plain = diff.render(None);
        assert!(plain.contains("metrics/decode_per_s"));
        assert!(plain.contains("-50.0%"));
        assert!(!plain.contains("REGRESSION"));
        assert!(diff.render(Some(15.0)).contains("<< REGRESSION"));
        assert!(!diff.render(Some(60.0)).contains("<< REGRESSION"));
    }

    #[test]
    fn multi_field_members_compare_every_numeric_field() {
        // A metrics-document histogram member: all numeric fields diff.
        let registry = dlk_obs::Registry::new();
        registry.histogram("memctrl.latency").record(8);
        let old = parse(&registry.to_json("a")).unwrap();
        registry.histogram("memctrl.latency").record(100);
        let new = parse(&registry.to_json("b")).unwrap();
        let diff = diff(&old, &new);
        let names: Vec<&str> = diff.deltas.iter().map(|d| d.name.as_str()).collect();
        assert!(names.contains(&"memctrl.latency.count"));
        assert!(names.contains(&"memctrl.latency.p95"));
        // Latency p95 going up is a regression under the heuristic.
        assert!(!diff.regressions(50.0).is_empty());
    }
}
