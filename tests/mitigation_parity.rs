//! Property: a `Mitigation` mounted through the Scenario builder sees
//! exactly the same activation stream as the same defense hand-wired
//! onto a raw `MemoryController` (the legacy path). The scenario
//! pipeline adds nothing and hides nothing from the hook.

use std::sync::{Arc, Mutex};

use proptest::prelude::*;

use dram_locker::attacks::hammer::{HammerConfig, HammerDriver};
use dram_locker::defenses::{CounterDefenseHook, RowTracker};
use dram_locker::dram::RowId;
use dram_locker::memctrl::{MemCtrlConfig, MemRequest, MemoryController};
use dram_locker::sim::{Budget, HammerAttack, Scenario, TrackerMitigation, VictimSpec};

/// A tracker that records every activation it is shown. Clones share
/// the log, so the copy the builder mounts writes into the observer's
/// buffer.
#[derive(Clone)]
struct SpyTracker {
    threshold: u64,
    count: u64,
    log: Arc<Mutex<Vec<u64>>>,
}

impl SpyTracker {
    fn new(threshold: u64) -> (Self, Arc<Mutex<Vec<u64>>>) {
        let log = Arc::new(Mutex::new(Vec::new()));
        (Self { threshold, count: 0, log: log.clone() }, log)
    }
}

impl RowTracker for SpyTracker {
    fn on_activate(&mut self, row: RowId) -> bool {
        self.log.lock().unwrap().push(row.0);
        self.count += 1;
        if self.count >= self.threshold {
            self.count = 0;
            true
        } else {
            false
        }
    }

    fn reset_window(&mut self) {
        self.count = 0;
    }

    fn storage_bits(&self) -> u64 {
        64
    }

    fn name(&self) -> &'static str {
        "spy"
    }
}

proptest! {
    /// For arbitrary victim rows, thresholds and budgets, the builder
    /// path and the legacy hand-wired path drive identical activation
    /// streams into the mounted defense.
    #[test]
    fn builder_mounted_hook_sees_the_legacy_activation_stream(
        victim_row in 2u64..60,
        threshold in 2u64..12,
        budget in 64u64..512,
    ) {
        let bit = 7usize;
        let fill = 0xA5u8;

        // Path 1: the Scenario builder. Its report phase ends with one
        // trusted integrity read of the victim row.
        let (tracker, scenario_log) = SpyTracker::new(threshold);
        let report = Scenario::builder()
            .victim(VictimSpec::row(victim_row, fill))
            .attack(HammerAttack::bit(bit))
            .custom_defense(TrackerMitigation::new(tracker))
            .budget(Budget { max_activations: budget, check_interval: 8, iterations: 1 })
            .build()
            .expect("scenario builds")
            .run()
            .expect("scenario runs");

        // Path 2: the legacy wiring — seed the row, mount the hook by
        // hand, run the same campaign, read the row back.
        let config = MemCtrlConfig::tiny_for_tests();
        let row_bytes = config.dram.geometry.row_bytes;
        let (tracker, legacy_log) = SpyTracker::new(threshold);
        let mut ctrl = MemoryController::with_hook(config, Box::new(CounterDefenseHook::new(tracker)));
        let (row, _) = ctrl.mapper().to_dram(victim_row * row_bytes as u64).expect("maps");
        ctrl.dram_mut().write_row(row, &vec![fill; row_bytes]).expect("seed");
        let driver = HammerDriver::new(HammerConfig { max_activations: budget, check_interval: 8 });
        let outcome = driver.hammer_bit(&mut ctrl, row, bit).expect("campaign runs");
        let done = ctrl
            .service(MemRequest::read(victim_row * row_bytes as u64, row_bytes))
            .expect("victim read");

        prop_assert_eq!(scenario_log.lock().unwrap().clone(), legacy_log.lock().unwrap().clone());
        // The surfaced outcome matches the raw driver's too.
        prop_assert_eq!(report.landed_flips > 0, outcome.flipped);
        prop_assert_eq!(report.requests, outcome.requests);
        prop_assert_eq!(report.denied, outcome.denied);
        prop_assert_eq!(
            report.victims[0].data_intact,
            Some(done.data.as_deref() == Some(vec![fill; row_bytes].as_slice()))
        );
    }
}
