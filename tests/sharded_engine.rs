//! The sharded execution engine's workspace-level guarantees:
//!
//! 1. a multi-channel `ScenarioRun` stepped on scoped threads produces
//!    a `RunReport` bit-identical to the serial reference run;
//! 2. the parallel run really does execute shards on multiple threads
//!    (observed from inside the mounted defense hooks);
//! 3. any generated `Trace` survives a serialization round-trip through
//!    the workspace trace codec (the vendored `serde` stub is
//!    marker-only, so `to_text`/`from_text` *is* the trace's on-disk
//!    serde);
//! 4. cross-channel multi-tenant isolation: hammering channel 0's
//!    victim never perturbs channel 1's tenant.

use std::collections::HashSet;
use std::sync::{Arc, Mutex};
use std::thread::ThreadId;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use dram_locker::dram::{DramDevice, RowAddr};
use dram_locker::memctrl::{DefenseHook, HookAction, MemRequest, Trace, TraceOp};
use dram_locker::sim::{
    find, AttackSpec, EngineConfig, LockerMitigation, Mitigation, MountCtx, RunReport, Scenario,
    ScenarioBuilder, SimError, VictimSpec, Workload,
};

const ROW_BYTES: u64 = 64; // tiny geometry

/// The multi-tenant 4-channel mix used across these tests: three
/// benign tenants plus a hammer loop aimed at channel 0's victim
/// (global rows 76/84 = channel 0's local rows 19/21).
fn multitenant_4ch() -> ScenarioBuilder {
    Scenario::builder()
        .label("determinism")
        .victim_on(VictimSpec::row(20, 0xA5), 0)
        .victim_on(VictimSpec::row(20, 0x5A), 1)
        .attack(AttackSpec::tenants(vec![
            Workload::Sequential { base: 0, len: 8, count: 400 },
            Workload::Strided { base: 0, stride: 4 * ROW_BYTES, len: 4, count: 200 },
            Workload::PointerChase { base: 0, span: 512 * ROW_BYTES, len: 8, count: 400, seed: 3 },
            Workload::HammerLoop {
                addr_a: 76 * ROW_BYTES,
                addr_b: 84 * ROW_BYTES,
                iterations: 200,
            },
        ]))
}

fn run_with(engine: EngineConfig, defended: bool) -> Result<RunReport, SimError> {
    let mut builder = multitenant_4ch().engine(engine);
    if defended {
        builder = builder.defense(LockerMitigation::adjacent());
    }
    builder.build()?.run()
}

#[test]
fn sharded_run_report_is_bit_identical_to_serial_reference() {
    for defended in [false, true] {
        let parallel = run_with(EngineConfig::sharded(4), defended).unwrap();
        let serial = run_with(EngineConfig::serial_reference(4), defended).unwrap();
        assert_eq!(parallel, serial, "defended={defended}");
        assert_eq!(parallel.channels, 4);
        assert!(parallel.requests > 0);
    }
}

#[test]
fn undefended_mix_harms_only_channel_zeros_victim() {
    let report = run_with(EngineConfig::sharded(4), false).unwrap();
    assert_eq!(report.victims[0].data_intact, Some(false), "hammered tenant corrupted");
    assert_eq!(report.victims[1].data_intact, Some(true), "channel 1 tenant isolated");
}

#[test]
fn per_shard_lock_table_slices_contain_the_hammer_tenant() {
    let report = run_with(EngineConfig::sharded(4), true).unwrap();
    assert_eq!(report.victims[0].data_intact, Some(true));
    assert_eq!(report.victims[1].data_intact, Some(true));
    assert!(report.denied > 0, "the hammer tenant's accesses were denied");
    assert!(report.mitigation_total() > 0);
}

/// A mounted hook that records which thread served its shard's
/// traffic.
struct ThreadSpyHook {
    seen: Arc<Mutex<HashSet<ThreadId>>>,
}

impl DefenseHook for ThreadSpyHook {
    fn before_access(
        &mut self,
        _request: &MemRequest,
        _target: RowAddr,
        _dram: &mut DramDevice,
    ) -> HookAction {
        self.seen.lock().unwrap().insert(std::thread::current().id());
        HookAction::Allow
    }

    fn name(&self) -> &str {
        "thread-spy"
    }
}

#[derive(Clone)]
struct ThreadSpy {
    seen: Arc<Mutex<HashSet<ThreadId>>>,
}

impl Mitigation for ThreadSpy {
    fn name(&self) -> &str {
        "thread-spy"
    }

    fn mount(&self, _ctx: &MountCtx<'_>) -> Result<Box<dyn DefenseHook>, SimError> {
        Ok(Box::new(ThreadSpyHook { seen: self.seen.clone() }))
    }
}

fn spy_threads(engine: EngineConfig) -> HashSet<ThreadId> {
    let seen = Arc::new(Mutex::new(HashSet::new()));
    let mut run = multitenant_4ch()
        .engine(engine)
        .custom_defense(ThreadSpy { seen: seen.clone() })
        .build()
        .unwrap();
    run.run().unwrap();
    let set = seen.lock().unwrap().clone();
    set
}

#[test]
fn parallel_engine_steps_shards_on_multiple_non_main_threads() {
    // The attack phase drains shards on scoped threads; the
    // measurement probes afterwards run on the main thread, so `main`
    // legitimately appears in both sets.
    let main = std::thread::current().id();
    let parallel = spy_threads(EngineConfig::sharded(4));
    let shard_threads = parallel.iter().filter(|&&id| id != main).count();
    assert!(shard_threads >= 2, "expected several shard threads, saw {shard_threads}");
    let serial = spy_threads(EngineConfig::serial_reference(4));
    assert_eq!(serial, HashSet::from([main]), "serial reference stays on the main thread");
}

/// A pseudo-random trace: mixed reads/writes over a 32-bit address
/// space with arbitrary lengths and payloads.
fn generated_trace(seed: u64, ops: usize, untrusted: bool) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trace = Trace::new();
    trace.untrusted = untrusted;
    for _ in 0..ops {
        let addr = rng.random_range(0u64..1 << 32);
        if rng.random_bool(0.5) {
            trace.push(TraceOp::Read { addr, len: rng.random_range(1usize..64) });
        } else {
            // Include empty payloads: they round-trip via the codec's
            // explicit `-` marker.
            let len = rng.random_range(0usize..16);
            let payload = (0..len).map(|_| rng.random_range(0u32..256) as u8).collect();
            trace.push(TraceOp::Write { addr, payload });
        }
    }
    trace
}

proptest! {
    /// Any generated trace survives the workspace serde round-trip.
    #[test]
    fn any_generated_trace_roundtrips_through_the_codec(
        seed in any::<u64>(),
        ops in 0usize..48,
        untrusted in any::<bool>(),
    ) {
        let trace = generated_trace(seed, ops, untrusted);
        let text = trace.to_text();
        let parsed = Trace::from_text(&text).expect("codec parses its own output");
        prop_assert_eq!(parsed, trace);
    }

    /// Sharded and serial-reference engines agree on arbitrary seeds:
    /// the determinism guarantee holds across the workload space, not
    /// just one hand-picked trace.
    #[test]
    fn determinism_holds_for_arbitrary_chase_seeds(seed in any::<u64>()) {
        let scenario = |engine| {
            Scenario::builder()
                .engine(engine)
                .victim(VictimSpec::row(20, 0xA5))
                .attack(AttackSpec::replay(Workload::PointerChase {
                    base: 0,
                    span: 512 * ROW_BYTES,
                    len: 8,
                    count: 200,
                    seed,
                }))
                .build()
                .unwrap()
                .run()
                .unwrap()
        };
        prop_assert_eq!(
            scenario(EngineConfig::sharded(2)),
            scenario(EngineConfig::serial_reference(2))
        );
    }
}

#[test]
fn catalog_replay_scenarios_run_sharded() {
    for name in ["replay-stream-2ch", "replay-multitenant-4ch-vs-dram-locker"] {
        let report = find(name).unwrap().scenario().build().unwrap().run().unwrap();
        assert!(report.channels > 1, "{name} is a multi-channel scenario");
        assert!(report.requests > 0);
        assert!(!report.harmed(), "{name}: {report:?}");
    }
}
