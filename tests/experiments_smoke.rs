//! Fast-fidelity smoke run of every paper experiment: each artifact
//! builds, has the right shape, and shows the qualitative result the
//! paper reports.

use dram_locker::xlayer::experiments::{
    fig1a, fig1b, fig7a, fig7b, fig8, mc_variation, pta, table1, table2, Fidelity,
};

#[test]
fn fig1a_bfa_beats_random() {
    let result = fig1a::run(Fidelity::Fast);
    assert!(result.bfa.last_y() < result.random.last_y());
}

#[test]
fn fig1b_has_all_generations() {
    assert_eq!(fig1b::run().rows.len(), 6);
}

#[test]
fn mc_variation_zero_is_perfect() {
    let table = mc_variation::run(Fidelity::Fast);
    assert_eq!(table.rows[0][2], "0");
}

#[test]
fn table1_ranks_locker_smallest_area() {
    let table = table1::run();
    let locker = table.rows.iter().find(|r| r[0] == "DRAM-Locker").unwrap();
    assert_eq!(locker[3], "0.02%");
}

#[test]
fn fig7a_locker_lowest() {
    let result = fig7a::run(Fidelity::Fast);
    let dl_last = result.dl().last_y();
    for shadow in &result.series[..4] {
        assert!(dl_last < shadow.last_y());
    }
}

#[test]
fn fig7b_locker_over_500_days() {
    let days = fig7b::dl_days();
    assert!(days[0].1 > 500.0);
}

#[test]
fn fig8_locker_preserves_accuracy() {
    let panels = fig8::run(Fidelity::Fast);
    for panel in panels {
        assert!(panel.with_locker.last_y() > panel.without_locker.last_y());
    }
}

#[test]
fn table2_locker_row_is_lossless() {
    let entries = table2::entries(Fidelity::Fast);
    let locker = entries.last().unwrap();
    assert_eq!(locker.clean_acc_pct, locker.post_attack_acc_pct);
}

#[test]
fn pta_defense_works_end_to_end() {
    let undefended = pta::run_scenario(false).unwrap();
    let defended = pta::run_scenario(true).unwrap();
    assert!(undefended.redirected);
    assert!(!defended.redirected);
    assert!(defended.denied > 0);
}
