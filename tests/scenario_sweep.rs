//! Head-to-head sweep over the named scenario catalog: every attack ×
//! defense combination runs through the unified pipeline and shows the
//! qualitative result the paper reports.

use dram_locker::sim::{catalog, find, Expected};

#[test]
fn catalog_enumerates_the_papers_matchups() {
    assert!(catalog().len() >= 6, "need at least 6 named attack×defense scenarios");
    let names: std::collections::HashSet<_> = catalog().iter().map(|e| e.name).collect();
    assert_eq!(names.len(), catalog().len(), "catalog names must be unique");
    for required in [
        "hammer-vs-none",
        "hammer-vs-dram-locker",
        "bfa-vs-none",
        "bfa-vs-dram-locker",
        "pta-vs-none",
        "pta-vs-dram-locker",
    ] {
        assert!(find(required).is_ok(), "missing catalog entry {required}");
    }
}

#[test]
fn sweep_every_scenario_matches_its_expectation() {
    for entry in catalog() {
        let report = entry
            .scenario()
            .build()
            .unwrap_or_else(|e| panic!("{} failed to build: {e}", entry.name))
            .run()
            .unwrap_or_else(|e| panic!("{} failed to run: {e}", entry.name));
        assert_eq!(report.scenario, entry.name);
        match entry.expected {
            Expected::Harmed => {
                assert!(report.harmed(), "{} should harm the victim: {report:?}", entry.name);
            }
            Expected::Contained => {
                assert!(!report.harmed(), "{} should be contained: {report:?}", entry.name);
            }
            Expected::Any => {}
        }
    }
}

#[test]
fn locker_scenarios_actually_deny() {
    for name in ["hammer-vs-dram-locker", "bfa-hammer-vs-dram-locker", "pta-vs-dram-locker"] {
        let report = find(name).unwrap().scenario().build().unwrap().run().unwrap();
        assert!(report.fully_denied(), "{name} must fully deny the attacker: {report:?}");
        assert!(report.mitigation_total() > 0, "{name} must report locker actions");
    }
}

#[test]
fn overhead_scenario_reports_costs_without_denials() {
    let report =
        find("inference-vs-dram-locker").unwrap().scenario().build().unwrap().run().unwrap();
    assert_eq!(report.denied, 0, "adjacent-row locking never touches victim traffic");
    assert!(report.cycles > 0);
    assert!(report.energy_pj > 0.0);
    assert_eq!(report.accuracy_delta_pct(), 0.0);
}
