//! Parity pins for the table-driven hot path: `service_batch` must be
//! behaviourally identical to per-request `service` — same
//! completions, same statistics, same device state — now that both
//! run through the one `prepare`/`service_mapped` head (the batch
//! path used to duplicate the OS-fault-before-validation logic).

use dram_locker::locker::{DramLocker, LockerConfig};
use dram_locker::memctrl::{
    ControllerStats, MemCtrlConfig, MemRequest, MemoryController, RequestKind,
};

/// Deterministic xorshift for the request mix.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// A randomized but always-mappable request mix: reads and writes
/// across every row, a slice of untrusted requests into an
/// OS-protected range (→ os_faults), and traffic into locker-locked
/// rows (→ denials).
fn request_mix(seed: u64, count: usize, row_bytes: u64, total_rows: u64) -> Vec<MemRequest> {
    let mut rng = Rng(seed | 1);
    (0..count)
        .map(|_| {
            let row = rng.next() % total_rows;
            let offset = rng.next() % (row_bytes - 8);
            let addr = row * row_bytes + offset;
            let len = 1 + (rng.next() % 8) as usize;
            let request = if rng.next().is_multiple_of(4) {
                MemRequest::write(addr, vec![(rng.next() & 0xFF) as u8; len])
            } else {
                MemRequest::read(addr, len)
            };
            if rng.next().is_multiple_of(3) {
                request.untrusted()
            } else {
                request
            }
        })
        .collect()
}

/// Builds a controller with an OS-protected range and a DRAM-Locker
/// hook with a few locked rows, so the mix exercises every completion
/// flavour (served, os-faulted, denied).
fn controller_under_test() -> MemoryController {
    let config = MemCtrlConfig::tiny_for_tests();
    let row_bytes = config.dram.geometry.row_bytes as u64;
    let mut locker = DramLocker::new(LockerConfig::default(), config.dram.geometry);
    locker.lock_phys_range(3 * row_bytes, 16 * row_bytes).expect("lock rows 3..16");
    let mut ctrl = MemoryController::with_hook(config, Box::new(locker));
    ctrl.os_protect_range(32 * row_bytes, 64 * row_bytes);
    ctrl
}

fn outcome(stats: &ControllerStats) -> (u64, u64, u64, u64, u64, u64, u64) {
    (
        stats.served,
        stats.denied,
        stats.redirected,
        stats.os_faults,
        stats.reads,
        stats.writes,
        stats.total_latency,
    )
}

#[test]
fn service_batch_stats_identical_to_per_request_service() {
    for seed in [1u64, 42, 0xDEAD_BEEF] {
        let mut per_request = controller_under_test();
        let mut batched = controller_under_test();
        let geometry = per_request.geometry();
        let mix = request_mix(seed, 400, geometry.row_bytes as u64, geometry.total_rows());

        let mut singles = Vec::with_capacity(mix.len());
        for request in &mix {
            singles.push(per_request.service(request.clone()).expect("mappable"));
        }
        // Batch the same requests in uneven chunks so chunk boundaries
        // land mid-pattern.
        let mut batch_done = Vec::with_capacity(mix.len());
        for chunk in mix.chunks(7) {
            batch_done.extend(batched.service_batch(chunk).expect("mappable"));
        }

        assert_eq!(singles.len(), batch_done.len());
        for (single, batch) in singles.iter().zip(&batch_done) {
            assert_eq!(single.request.id, batch.request.id, "same request stream");
            assert_eq!(single.denied, batch.denied, "denial parity for {}", single.request);
            assert_eq!(single.latency, batch.latency, "latency parity for {}", single.request);
            assert_eq!(single.data, batch.data, "data parity for {}", single.request);
        }
        assert_eq!(
            outcome(per_request.stats()),
            outcome(batched.stats()),
            "stats diverged for seed {seed}"
        );
        // The mix must actually exercise all three completion paths,
        // or the parity claim is vacuous.
        let stats = per_request.stats();
        assert!(stats.served > 0, "mix never reached the device");
        assert!(stats.os_faults > 0, "mix never OS-faulted");
        assert!(stats.denied > 0, "mix never hit a locked row");
    }
}

#[test]
fn batch_read_data_matches_prior_writes() {
    let mut ctrl = MemoryController::new(MemCtrlConfig::tiny_for_tests());
    let row_bytes = ctrl.geometry().row_bytes as u64;
    let writes: Vec<MemRequest> =
        (0..8).map(|i| MemRequest::write(i * row_bytes, vec![i as u8 + 1; 4])).collect();
    ctrl.service_batch(&writes).expect("writes");
    let reads: Vec<MemRequest> = (0..8).map(|i| MemRequest::read(i * row_bytes, 4)).collect();
    let done = ctrl.service_batch(&reads).expect("reads");
    for (i, completed) in done.iter().enumerate() {
        assert_eq!(completed.request.kind, RequestKind::Read);
        assert_eq!(completed.data.as_deref(), Some(&[i as u8 + 1; 4][..]));
    }
}
