//! Multi-tenant smoke test: two victims share one DRAM device; an
//! attack on tenant A must not perturb tenant B — the first step toward
//! the ROADMAP's multi-tenant workload.

use dram_locker::dnn::models::{self, ModelKind};
use dram_locker::sim::{
    BfaHammerAttack, Budget, LockerMitigation, Scenario, ScenarioRun, VictimSpec,
};

const TENANT_A_BASE: u64 = 0x400; // rows 16.. of the tiny geometry
const TENANT_B_BASE: u64 = 0x800; // rows 32.., same subarray, well apart

fn two_tenant_run(defended: bool) -> ScenarioRun {
    let mut builder = Scenario::builder()
        .label(if defended { "multi-tenant defended" } else { "multi-tenant undefended" })
        .victim(VictimSpec::model(ModelKind::Tiny, 41, TENANT_A_BASE))
        .victim(VictimSpec::model(ModelKind::Tiny, 43, TENANT_B_BASE))
        .attack(BfaHammerAttack { batch: 32 })
        .budget(Budget { max_activations: 20_000, check_interval: 8, iterations: 1 })
        .target_victim(0);
    if defended {
        builder = builder.defense(LockerMitigation::adjacent());
    }
    builder.build().expect("two tenants deploy on one device")
}

#[test]
fn attack_on_tenant_a_leaves_tenant_b_untouched() {
    let victim_b = models::victim_tiny(43);
    let mut run = two_tenant_run(false);
    let report = run.run().expect("campaign runs");
    assert_eq!(report.landed_flips, 1, "undefended flip on tenant A lands: {report:?}");

    // Tenant A's weight image is corrupted...
    let tenant_a = run.reload_model(0).expect("load").expect("model victim");
    assert_ne!(tenant_a, models::victim_tiny(41).model);

    // ...tenant B's bytes and reported accuracy are bit-identical.
    let tenant_b = run.reload_model(1).expect("load").expect("model victim");
    assert_eq!(tenant_b, victim_b.model, "tenant B must be untouched");
    assert_eq!(
        report.victims[1].accuracy_before_pct, report.victims[1].accuracy_after_pct,
        "tenant B reported accuracy must not move: {report:?}"
    );
}

#[test]
fn defended_device_contains_the_attack_for_both_tenants() {
    let mut run = two_tenant_run(true);
    let report = run.run().expect("campaign runs");
    assert!(report.fully_denied(), "{report:?}");
    for (index, victim) in report.victims.iter().enumerate() {
        assert_eq!(
            victim.accuracy_before_pct, victim.accuracy_after_pct,
            "tenant {index} accuracy must be unchanged: {report:?}"
        );
    }
}

#[test]
fn guarded_ranges_cover_both_tenants() {
    let run = two_tenant_run(true);
    let ranges: Vec<(u64, u64)> =
        run.victims().iter().flat_map(|v| v.guarded_ranges().iter().copied()).collect();
    assert_eq!(ranges.len(), 2);
    assert!(ranges[0].0 == TENANT_A_BASE && ranges[1].0 == TENANT_B_BASE);
    assert!(ranges[0].1 <= TENANT_B_BASE, "tenant images must not overlap");
}
