//! Every defense in the workspace against the same hammer campaign,
//! assembled through the unified Scenario API.
//!
//! The campaign targets row 20 with the tiny test configuration
//! (TRH = 16). Expectations:
//!
//! - no defense: the victim bit flips and the data pattern corrupts;
//! - counter-based trackers (Graphene, Hydra, TWiCE, counter-per-row):
//!   the aggressor is refreshed before reaching TRH, no flip;
//! - swap-based defenses (RRS, SRS, SHADOW): the aggressor's physical
//!   row is relocated before reaching TRH; the victim's *logical* data
//!   survives (the report's integrity probe follows the remap);
//! - DRAM-Locker: aggressor accesses are denied outright.

use dram_locker::sim::{Budget, DefenseSpec, HammerAttack, RunReport, Scenario, VictimSpec};

fn campaign(defense: Option<DefenseSpec>) -> RunReport {
    let mut builder = Scenario::builder()
        .label("defense-matrix")
        .victim(VictimSpec::row(20, 0xA5))
        .attack(HammerAttack::bit(77))
        .budget(Budget { max_activations: 4_000, check_interval: 8, iterations: 1 });
    if let Some(defense) = defense {
        builder = builder.defense(defense);
    }
    builder.build().expect("scenario builds").run().expect("campaign runs")
}

#[test]
fn no_defense_fails() {
    let report = campaign(None);
    assert_eq!(report.landed_flips, 1, "{report:?}");
    assert_eq!(report.victims[0].data_intact, Some(false), "pattern must corrupt");
}

#[test]
fn graphene_prevents_the_flip() {
    // Mitigation threshold below TRH=16.
    let report = campaign(Some(DefenseSpec::graphene(64, 8)));
    assert_eq!(report.landed_flips, 0, "{report:?}");
    assert!(report.mitigation_total() > 0, "graphene must have refreshed: {report:?}");
}

#[test]
fn hydra_prevents_the_flip() {
    let report = campaign(Some(DefenseSpec::hydra(16, 4, 8)));
    assert_eq!(report.landed_flips, 0, "{report:?}");
}

#[test]
fn twice_prevents_the_flip() {
    let report = campaign(Some(DefenseSpec::twice(8, 64, 1)));
    assert_eq!(report.landed_flips, 0, "{report:?}");
}

#[test]
fn counter_per_row_prevents_the_flip() {
    let report = campaign(Some(DefenseSpec::counter_per_row(8)));
    assert_eq!(report.landed_flips, 0, "{report:?}");
}

#[test]
fn rrs_preserves_victim_data() {
    let report = campaign(Some(DefenseSpec::rrs(8, 5)));
    assert_eq!(report.victims[0].data_intact, Some(true), "{report:?}");
}

#[test]
fn srs_preserves_victim_data() {
    let report = campaign(Some(DefenseSpec::srs(8, 5)));
    assert_eq!(report.victims[0].data_intact, Some(true), "{report:?}");
}

#[test]
fn shadow_preserves_victim_data() {
    let report = campaign(Some(DefenseSpec::shadow(8, 5)));
    assert_eq!(report.victims[0].data_intact, Some(true), "{report:?}");
}

#[test]
fn dram_locker_denies_instead_of_refreshing() {
    // The adjacent-row protection plan locks rows 19 and 21 around the
    // guarded victim row — exactly the aggressor candidates.
    let report = campaign(Some(DefenseSpec::locker_adjacent()));
    assert_eq!(report.landed_flips, 0, "{report:?}");
    assert!(report.fully_denied(), "DRAM-Locker denies rather than mitigates: {report:?}");
    assert_eq!(report.victims[0].data_intact, Some(true));
}

#[test]
fn counter_defenses_allow_but_mitigate() {
    // Counter-based defenses never deny; they serve and refresh.
    let report = campaign(Some(DefenseSpec::graphene(64, 8)));
    assert_eq!(report.denied, 0);
    assert!(report.requests > 0);
    assert_eq!(report.mitigations.len(), 1);
    assert_eq!(report.mitigations[0].name, "graphene");
}
