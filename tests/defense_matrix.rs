//! Every defense in the workspace against the same hammer campaign.
//!
//! The campaign targets row 20 with the tiny test configuration
//! (TRH = 16). Expectations:
//!
//! - no defense: the victim bit flips;
//! - counter-based trackers (Graphene, Hydra, TWiCE, counter-per-row):
//!   the aggressor is refreshed before reaching TRH, no flip;
//! - swap-based defenses (RRS, SRS, SHADOW): the aggressor's physical
//!   row is relocated before reaching TRH, no flip at the victim;
//! - DRAM-Locker: aggressor accesses are denied outright.

use dram_locker::attacks::hammer::{HammerConfig, HammerDriver, HammerOutcome};
use dram_locker::defenses::{
    CounterDefenseHook, CounterPerRow, Graphene, Hydra, RowSwapDefense, Shadow, SwapPolicy, Twice,
};
use dram_locker::dram::RowAddr;
use dram_locker::locker::{DramLocker, LockerConfig};
use dram_locker::memctrl::{DefenseHook, MemCtrlConfig, MemoryController};

fn campaign(hook: Option<Box<dyn DefenseHook>>) -> HammerOutcome {
    let config = MemCtrlConfig::tiny_for_tests();
    let mut ctrl = match hook {
        Some(hook) => MemoryController::with_hook(config, hook),
        None => MemoryController::new(config),
    };
    let driver = HammerDriver::new(HammerConfig { max_activations: 4_000, check_interval: 8 });
    driver.hammer_bit(&mut ctrl, RowAddr::new(0, 0, 20), 77).expect("campaign runs")
}

#[test]
fn no_defense_fails() {
    let outcome = campaign(None);
    assert!(outcome.flipped, "{outcome:?}");
}

#[test]
fn graphene_prevents_the_flip() {
    // Mitigation threshold below TRH=16.
    let hook = CounterDefenseHook::new(Graphene::new(64, 8));
    let outcome = campaign(Some(Box::new(hook)));
    assert!(!outcome.flipped, "{outcome:?}");
}

#[test]
fn hydra_prevents_the_flip() {
    let hook = CounterDefenseHook::new(Hydra::new(16, 4, 8));
    let outcome = campaign(Some(Box::new(hook)));
    assert!(!outcome.flipped, "{outcome:?}");
}

#[test]
fn twice_prevents_the_flip() {
    let hook = CounterDefenseHook::new(Twice::new(8, 64, 1));
    let outcome = campaign(Some(Box::new(hook)));
    assert!(!outcome.flipped, "{outcome:?}");
}

#[test]
fn counter_per_row_prevents_the_flip() {
    let hook = CounterDefenseHook::new(CounterPerRow::new(8));
    let outcome = campaign(Some(Box::new(hook)));
    assert!(!outcome.flipped, "{outcome:?}");
}

/// Swap-based defenses relocate data, so the oracle is *logical*
/// integrity: seed the victim row with a pattern, attack, then read it
/// back through the controller (which follows the defense's remap).
fn campaign_preserves_victim_data(hook: Box<dyn DefenseHook>) -> bool {
    let config = MemCtrlConfig::tiny_for_tests();
    let row_bytes = config.dram.geometry.row_bytes as u64;
    let mut ctrl = MemoryController::with_hook(config, hook);
    let victim = RowAddr::new(0, 0, 20);
    let pattern = vec![0xA5u8; row_bytes as usize];
    ctrl.dram_mut().write_row(victim, &pattern).expect("seed");
    let driver = HammerDriver::new(HammerConfig { max_activations: 4_000, check_interval: 8 });
    driver.hammer_bit(&mut ctrl, victim, 77).expect("campaign runs");
    // The victim (trusted) reads its logical row; the hook redirects to
    // wherever the data lives now.
    let done = ctrl
        .service(dram_locker::memctrl::MemRequest::read(20 * row_bytes, row_bytes as usize))
        .expect("victim read");
    done.data.as_deref() == Some(pattern.as_slice())
}

#[test]
fn undefended_campaign_corrupts_victim_data() {
    let config = MemCtrlConfig::tiny_for_tests();
    let row_bytes = config.dram.geometry.row_bytes as u64;
    let mut ctrl = MemoryController::new(config);
    let victim = RowAddr::new(0, 0, 20);
    let pattern = vec![0xA5u8; row_bytes as usize];
    ctrl.dram_mut().write_row(victim, &pattern).expect("seed");
    let driver = HammerDriver::new(HammerConfig { max_activations: 4_000, check_interval: 8 });
    driver.hammer_bit(&mut ctrl, victim, 77).expect("campaign runs");
    let done = ctrl
        .service(dram_locker::memctrl::MemRequest::read(20 * row_bytes, row_bytes as usize))
        .expect("victim read");
    assert_ne!(done.data.as_deref(), Some(pattern.as_slice()));
}

#[test]
fn rrs_preserves_victim_data() {
    assert!(campaign_preserves_victim_data(Box::new(RowSwapDefense::new(
        SwapPolicy::Randomized,
        8,
        5,
    ))));
}

#[test]
fn srs_preserves_victim_data() {
    assert!(campaign_preserves_victim_data(Box::new(RowSwapDefense::new(
        SwapPolicy::Secure,
        8,
        5,
    ))));
}

#[test]
fn shadow_preserves_victim_data() {
    assert!(campaign_preserves_victim_data(Box::new(Shadow::new(8, 5))));
}

#[test]
fn dram_locker_denies_instead_of_refreshing() {
    let geometry = MemCtrlConfig::tiny_for_tests().dram.geometry;
    let mut locker = DramLocker::new(LockerConfig::default(), geometry);
    // Lock the aggressor-candidate rows around the victim.
    locker.lock_row(RowAddr::new(0, 0, 19)).expect("capacity");
    locker.lock_row(RowAddr::new(0, 0, 21)).expect("capacity");
    let outcome = campaign(Some(Box::new(locker)));
    assert!(!outcome.flipped, "{outcome:?}");
    assert!(outcome.fully_denied(), "DRAM-Locker denies rather than mitigates: {outcome:?}");
}

#[test]
fn counter_defenses_allow_but_mitigate() {
    // Counter-based defenses never deny; they serve and refresh.
    let hook = CounterDefenseHook::new(Graphene::new(64, 8));
    let outcome = campaign(Some(Box::new(hook)));
    assert_eq!(outcome.denied, 0);
    assert!(outcome.requests > 0);
}
