//! The scenario-spec codec's workspace-level guarantees:
//!
//! 1. any generated `ScenarioSpec` — across every attack, defense and
//!    victim variant — survives `from_text(to_text(spec))` bit-exact
//!    (the vendored `serde` is marker-only, so this codec *is* the
//!    spec's on-disk serde);
//! 2. the text format itself is pinned by a golden file, so a codec
//!    change that silently breaks old spec files fails loudly;
//! 3. `Scenario::from_spec` on a catalog entry's spec reproduces the
//!    same `RunReport` as the builder path — including after a codec
//!    round-trip — for the representative MLP BFA, CNN BFA and
//!    2-channel replay scenarios.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use dram_locker::attacks::bfa::BfaConfig;
use dram_locker::dnn::models::ModelKind;
use dram_locker::locker::{LockTarget, LockerConfig};
use dram_locker::memctrl::{Trace, TraceOp};
use dram_locker::sim::{
    AttackSpec, Budget, DefenseSpec, EngineConfig, GeometrySpec, Scenario, ScenarioSpec,
    VictimSpec, Workload,
};

fn generated_workload(rng: &mut StdRng) -> Workload {
    match rng.random_range(0u32..4) {
        0 => Workload::Sequential {
            base: rng.random_range(0u64..1 << 20),
            len: rng.random_range(1usize..64),
            count: rng.random_range(0usize..500),
        },
        1 => Workload::Strided {
            base: rng.random_range(0u64..1 << 20),
            stride: rng.random_range(1u64..4096),
            len: rng.random_range(1usize..64),
            count: rng.random_range(0usize..500),
        },
        2 => Workload::PointerChase {
            base: rng.random_range(0u64..1 << 20),
            span: rng.random_range(64u64..1 << 16),
            len: rng.random_range(1usize..64),
            count: rng.random_range(0usize..500),
            seed: rng.random_range(0u64..u64::MAX),
        },
        _ => Workload::HammerLoop {
            addr_a: rng.random_range(0u64..1 << 20),
            addr_b: rng.random_range(0u64..1 << 20),
            iterations: rng.random_range(0usize..500),
        },
    }
}

fn generated_model(rng: &mut StdRng) -> ModelKind {
    ModelKind::ALL[rng.random_range(0usize..ModelKind::ALL.len())]
}

fn generated_victim(rng: &mut StdRng) -> VictimSpec {
    let spec = match rng.random_range(0u32..3) {
        0 => VictimSpec::row_span(
            rng.random_range(0u64..512),
            rng.random_range(1u64..8),
            rng.random_range(0u32..256) as u8,
        ),
        1 => VictimSpec::model(
            generated_model(rng),
            rng.random_range(0u64..1 << 32),
            rng.random_range(0u64..1 << 16),
        ),
        _ => VictimSpec::paged(generated_model(rng), rng.random_range(0u64..1 << 32)).with_paging(
            rng.random_range(64u64..1024),
            rng.random_range(1u64..64),
            rng.random_range(1024u64..1 << 16),
        ),
    };
    spec.with_os_protect(rng.random_bool(0.5))
}

fn generated_attack(rng: &mut StdRng) -> AttackSpec {
    match rng.random_range(0u32..10) {
        0 => AttackSpec::Hammer { bit: rng.random_range(0usize..512) },
        1 => AttackSpec::RowProbe { accesses: rng.random_range(0u64..10_000) },
        2 => AttackSpec::BfaHammer { batch: rng.random_range(1usize..128) },
        3 => AttackSpec::ProgressiveBfa {
            // Arbitrary finite fractions: Display/parse of f64 is
            // shortest-round-trip, so equality must hold bit-exact.
            success_rate: rng.random_range(0u64..u64::MAX) as f64 / u64::MAX as f64,
            seed: rng.random_range(0u64..u64::MAX),
            config: BfaConfig {
                candidates_per_layer: rng.random_range(1usize..16),
                bits_considered: if rng.random_bool(0.5) {
                    None
                } else {
                    Some([rng.random_range(0u32..8) as u8, rng.random_range(0u32..8) as u8])
                },
            },
        },
        4 => AttackSpec::RandomFlip { seed: rng.random_range(0u64..u64::MAX) },
        5 => AttackSpec::PageTable {
            pfn_bit: rng.random_range(0u32..16),
            payload_xor: rng.random_range(0u32..256) as u8,
        },
        6 => AttackSpec::InferenceStream {
            batches: rng.random_range(1u64..32),
            chunk: rng.random_range(1usize..128),
        },
        7 => {
            let tenants =
                (0..rng.random_range(1usize..5)).map(|_| generated_workload(rng)).collect();
            AttackSpec::Replay { tenants }
        }
        8 => {
            let mut trace = Trace::new();
            trace.untrusted = rng.random_bool(0.5);
            for _ in 0..rng.random_range(0usize..32) {
                let addr = rng.random_range(0u64..1 << 32);
                if rng.random_bool(0.5) {
                    trace.push(TraceOp::Read { addr, len: rng.random_range(1usize..64) });
                } else {
                    let len = rng.random_range(0usize..16);
                    let payload = (0..len).map(|_| rng.random_range(0u32..256) as u8).collect();
                    trace.push(TraceOp::Write { addr, payload });
                }
            }
            AttackSpec::ReplayTrace { trace }
        }
        _ => AttackSpec::WeightFetch {
            samples: rng.random_range(1usize..16),
            chunk: rng.random_range(1usize..128),
            channel: rng.random_range(0usize..4),
        },
    }
}

fn generated_defense(rng: &mut StdRng) -> DefenseSpec {
    match rng.random_range(0u32..8) {
        0 => DefenseSpec::Locker {
            config: LockerConfig {
                relock_interval: rng.random_range(1u64..10_000),
                table_capacity_bytes: rng.random_range(64usize..1 << 20),
                entry_bytes: rng.random_range(1usize..16),
                check_cycles: rng.random_range(0u64..8),
                copy_error_rate: rng.random_range(0u64..u64::MAX) as f64 / u64::MAX as f64,
                free_rows_per_subarray: rng.random_range(1u32..16),
                lock_target: [LockTarget::AdjacentRows, LockTarget::DataRows, LockTarget::Both]
                    [rng.random_range(0usize..3)],
                seed: rng.random_range(0u64..u64::MAX),
            },
            target: [LockTarget::AdjacentRows, LockTarget::DataRows, LockTarget::Both]
                [rng.random_range(0usize..3)],
            radius: rng.random_range(1u32..4),
        },
        1 => DefenseSpec::graphene(rng.random_range(1usize..256), rng.random_range(1u64..64)),
        2 => DefenseSpec::hydra(
            rng.random_range(1u64..64),
            rng.random_range(1u64..32),
            rng.random_range(1u64..32),
        ),
        3 => DefenseSpec::twice(
            rng.random_range(1u64..32),
            rng.random_range(1u64..256),
            rng.random_range(1u64..8),
        ),
        4 => DefenseSpec::counter_per_row(rng.random_range(1u64..64)),
        5 => DefenseSpec::rrs(rng.random_range(1u64..64), rng.random_range(0u64..u64::MAX)),
        6 => DefenseSpec::srs(rng.random_range(1u64..64), rng.random_range(0u64..u64::MAX)),
        _ => DefenseSpec::shadow(rng.random_range(1u64..64), rng.random_range(0u64..u64::MAX)),
    }
}

/// A pseudo-random spec spanning the full variant space.
fn generated_spec(seed: u64) -> ScenarioSpec {
    let mut rng = StdRng::seed_from_u64(seed);
    let geometry =
        [GeometrySpec::Tiny, GeometrySpec::Paper, GeometrySpec::Ddr4, GeometrySpec::Lpddr4]
            [rng.random_range(0usize..4)];
    let channels = rng.random_range(1usize..5);
    let engine = if rng.random_bool(0.5) {
        EngineConfig::sharded(channels)
    } else {
        EngineConfig::serial_reference(channels)
    };
    let victims = (0..rng.random_range(0usize..4))
        .map(|_| (generated_victim(&mut rng), rng.random_range(0usize..channels)))
        .collect();
    let attack = if rng.random_bool(0.8) { Some(generated_attack(&mut rng)) } else { None };
    let defenses = (0..rng.random_range(0usize..3)).map(|_| generated_defense(&mut rng)).collect();
    ScenarioSpec {
        label: format!("generated-{seed:#x}"),
        geometry,
        engine,
        victims,
        attack,
        defenses,
        budget: Budget {
            max_activations: rng.random_range(0u64..100_000),
            check_interval: rng.random_range(1u64..64),
            iterations: rng.random_range(0usize..100),
        },
        eval_batch: rng.random_range(1usize..256),
        target: rng.random_range(0usize..4),
    }
}

proptest! {
    /// Any generated spec survives the workspace spec serde, across
    /// all attack/defense/victim variants.
    #[test]
    fn any_generated_spec_roundtrips_through_the_codec(seed in any::<u64>()) {
        let spec = generated_spec(seed);
        let text = spec.to_text();
        let parsed = ScenarioSpec::from_text(&text).expect("codec parses its own output");
        prop_assert_eq!(parsed, spec);
    }
}

/// The golden spec: one of each record kind, mirroring the catalog's
/// multi-tenant entry plus a model victim and a defense stack.
fn golden_spec() -> ScenarioSpec {
    ScenarioSpec {
        label: "golden".to_owned(),
        geometry: GeometrySpec::Tiny,
        engine: EngineConfig::sharded(4),
        victims: vec![
            (VictimSpec::row(20, 0xA5), 0),
            (VictimSpec::model(ModelKind::TinyCnn, 7, 0x400), 1),
            (VictimSpec::paged(ModelKind::Tiny, 21), 2),
        ],
        attack: Some(AttackSpec::tenants(vec![
            Workload::Sequential { base: 0, len: 8, count: 400 },
            Workload::HammerLoop { addr_a: 4864, addr_b: 5376, iterations: 200 },
        ])),
        defenses: vec![DefenseSpec::locker_adjacent(), DefenseSpec::graphene(64, 8)],
        budget: Budget { max_activations: 20_000, check_interval: 8, iterations: 10 },
        eval_batch: 64,
        target: 0,
    }
}

/// The exact text `golden_spec()` serializes to. This IS the stable
/// experiment interface: editing it is a format change and must come
/// with a migration story for spec files in the wild.
const GOLDEN_TEXT: &str = "\
# dlk-scenario v1
label golden
geometry tiny
engine sharded(4)
budget activations=20000 check=8 iterations=10
eval-batch 64
target 0
victim rows home=0 protect=0 first=20 count=1 fill=0xa5
victim model home=1 protect=1 kind=tiny-cnn seed=7 base=0x400
victim paged home=2 protect=1 kind=tiny seed=21 page=256 pfn=8 table=0x1000
attack replay
tenant sequential base=0x0 len=8 count=400
tenant hammer-loop a=0x1300 b=0x1500 iterations=200
defense dram-locker target=adjacent radius=1 relock=1000 table=57344 entry=8 check=1 copy-err=0 free=4 lock-target=adjacent seed=3516928204
defense graphene capacity=64 threshold=8
";

#[test]
fn golden_file_pins_the_text_format() {
    assert_eq!(golden_spec().to_text(), GOLDEN_TEXT);
    assert_eq!(ScenarioSpec::from_text(GOLDEN_TEXT).unwrap(), golden_spec());
}

/// `Scenario::from_spec` (including after a codec round-trip) must
/// reproduce the builder path's `RunReport` bit for bit on the
/// representative catalog entries: MLP BFA, CNN BFA, 2-channel replay.
#[test]
fn from_spec_reproduces_builder_reports_for_representative_entries() {
    for name in ["bfa-vs-none", "cnn-bfa-vs-none", "replay-stream-2ch", "cnn-inference-2ch"] {
        let entry = dram_locker::sim::find(name).unwrap();
        let via_builder = entry.scenario().build().unwrap().run().unwrap();
        let reparsed = ScenarioSpec::from_text(&entry.spec.to_text()).unwrap();
        let via_spec = Scenario::from_spec(&reparsed).unwrap().run().unwrap();
        assert_eq!(via_spec, via_builder, "{name}");
    }
}
