//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;

use dram_locker::dnn::{models, QuantizedMlp};
use dram_locker::dram::{DramConfig, DramDevice, DramGeometry, RowAddr, RowId};
use dram_locker::locker::{Instruction, LockTable, MicroProgram};
use dram_locker::memctrl::{AddressMapper, MappingScheme};

proptest! {
    /// Address mapping is bijective for every scheme and address.
    #[test]
    fn mapper_roundtrip(phys in 0u64..16384, scheme_id in 0u8..2) {
        let scheme = if scheme_id == 0 {
            MappingScheme::BankSequential
        } else {
            MappingScheme::RowInterleaved
        };
        let mapper = AddressMapper::new(DramGeometry::tiny(), scheme);
        let (row, col) = mapper.to_dram(phys).unwrap();
        prop_assert_eq!(mapper.to_phys(row, col), phys);
    }

    /// Row-id flattening is bijective over the whole geometry.
    #[test]
    fn row_id_roundtrip(bank in 0u16..2, subarray in 0u16..2, row in 0u32..64) {
        let geometry = DramGeometry::tiny();
        let addr = RowAddr::new(bank, subarray, row);
        let id = geometry.row_id(addr);
        prop_assert_eq!(geometry.row_addr(id), Some(addr));
    }

    /// Every 16-bit word either decodes to an instruction that encodes
    /// back to itself, or is rejected.
    #[test]
    fn isa_decode_encode_consistent(word in any::<u16>()) {
        if let Ok(instruction) = Instruction::decode(word) {
            prop_assert_eq!(instruction.encode(), word);
        }
    }

    /// Assembled programs disassemble to themselves.
    #[test]
    fn program_assembly_roundtrip(a in 0u8..128, b in 0u8..128, buf in 0u8..128) {
        let program = MicroProgram::swap(a, b, buf);
        let words = program.assemble();
        prop_assert_eq!(MicroProgram::disassemble(&words).unwrap(), program);
    }

    /// Lock-table membership matches a reference set under arbitrary
    /// lock/unlock sequences.
    #[test]
    fn lock_table_matches_reference(ops in proptest::collection::vec((0u64..64, any::<bool>()), 1..100)) {
        let mut table = LockTable::new(64);
        let mut reference = std::collections::HashSet::new();
        for (row, lock) in ops {
            if lock {
                table.lock(RowId(row)).unwrap();
                reference.insert(row);
            } else {
                table.unlock(RowId(row));
                reference.remove(&row);
            }
        }
        prop_assert_eq!(table.len(), reference.len());
        for row in 0..64 {
            prop_assert_eq!(table.peek(RowId(row)), reference.contains(&row));
        }
    }

    /// DRAM row writes are isolated: writing one row never changes
    /// another.
    #[test]
    fn row_writes_are_isolated(row_a in 0u32..32, row_b in 0u32..32, fill in any::<u8>()) {
        prop_assume!(row_a != row_b);
        let mut dram = DramDevice::new(DramConfig::tiny_for_tests());
        let a = RowAddr::new(0, 0, row_a);
        let b = RowAddr::new(0, 0, row_b);
        let before = dram.read_row(b).unwrap();
        dram.write_row(a, &[fill; 64]).unwrap();
        prop_assert_eq!(dram.read_row(b).unwrap(), before);
    }

    /// Swapping twice through the buffer row restores both rows.
    #[test]
    fn double_swap_is_identity(fill_a in any::<u8>(), fill_b in any::<u8>()) {
        let mut dram = DramDevice::new(DramConfig::tiny_for_tests());
        let a = RowAddr::new(0, 1, 3);
        let b = RowAddr::new(0, 1, 7);
        let buffer = RowAddr::new(0, 1, 63);
        dram.write_row(a, &[fill_a; 64]).unwrap();
        dram.write_row(b, &[fill_b; 64]).unwrap();
        dram.swap_rows(a, b, buffer).unwrap();
        dram.swap_rows(a, b, buffer).unwrap();
        prop_assert_eq!(dram.read_row(a).unwrap(), vec![fill_a; 64]);
        prop_assert_eq!(dram.read_row(b).unwrap(), vec![fill_b; 64]);
    }

    /// Flipping any weight bit twice restores the model exactly.
    #[test]
    fn double_bit_flip_is_identity(offset in 0usize..288, bit in 0u8..8) {
        let model = models::tiny_mlp(5);
        let mut quantized = QuantizedMlp::quantize(&model);
        let reference = quantized.clone();
        let Some((layer, weight)) = quantized.locate_byte(offset) else {
            return Ok(());
        };
        let index = dram_locker::dnn::BitIndex { layer, weight, bit };
        quantized.flip_bit(index).unwrap();
        quantized.flip_bit(index).unwrap();
        prop_assert_eq!(quantized, reference);
    }

    /// Quantization error is bounded by half a step everywhere.
    #[test]
    fn quantization_error_bounded(seed in 0u64..32) {
        let model = models::tiny_mlp(seed);
        let quantized = QuantizedMlp::quantize(&model);
        for (fl, ql) in model.layers().iter().zip(quantized.weighted_layers()) {
            let deq = ql.matrix().unwrap().dequantize();
            for (a, b) in fl.weight().as_slice().iter().zip(deq.weight().as_slice()) {
                prop_assert!((a - b).abs() <= ql.scale() / 2.0 + 1e-6);
            }
        }
    }
}
