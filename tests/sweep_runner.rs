//! The sweep layer's workspace-level guarantees:
//!
//! 1. `SweepRunner` across worker threads produces `RunReport`s
//!    bit-identical to running every spec serially, in the same order —
//!    for the acceptance grid {1,2,4 channels} × {none, dram-locker}
//!    and for a mixed bag of catalog entries;
//! 2. the grid feeds `metrics::Table` and emits both CSV and markdown
//!    with one row per expanded spec;
//! 3. errors keep their slot instead of poisoning the sweep.

use dram_locker::sim::sweep::{SweepGrid, SweepRunner};
use dram_locker::sim::{metrics, DefenseSpec, ScenarioSpec};
use dram_locker::xlayer::experiments::defense_grid;

fn acceptance_grid() -> Vec<ScenarioSpec> {
    let base = dram_locker::sim::find("hammer-vs-none").unwrap().spec;
    SweepGrid::over(base)
        .channels([1, 2, 4])
        .defenses([vec![], vec![DefenseSpec::locker_adjacent()]])
        .expand()
}

#[test]
fn parallel_sweep_is_bit_identical_to_serial() {
    let specs = acceptance_grid();
    assert_eq!(specs.len(), 6);
    let parallel = SweepRunner::with_threads(4).run_reports(&specs).unwrap();
    let serial = SweepRunner::serial().run_reports(&specs).unwrap();
    assert_eq!(parallel, serial, "same RunReports in the same order");
    // Order is spec order: labels line up one-to-one.
    for (spec, report) in specs.iter().zip(&parallel) {
        assert_eq!(report.scenario, spec.label);
        assert_eq!(report.channels, spec.engine.channels);
    }
}

#[test]
fn mixed_catalog_sweep_is_deterministic_across_threads() {
    let specs: Vec<ScenarioSpec> = [
        "hammer-vs-none",
        "hammer-vs-graphene",
        "replay-hammer-vs-dram-locker",
        "replay-stream-2ch",
        "replay-multitenant-4ch",
    ]
    .into_iter()
    .map(|name| dram_locker::sim::find(name).unwrap().spec)
    .collect();
    let parallel = SweepRunner::parallel().run_reports(&specs).unwrap();
    let serial = SweepRunner::serial().run_reports(&specs).unwrap();
    assert_eq!(parallel, serial);
}

#[test]
fn grid_emits_csv_and_markdown_tables() {
    let reports = SweepRunner::parallel().run_reports(&acceptance_grid()).unwrap();
    let table = metrics::Table::from_reports(&reports);
    let csv = table.to_csv();
    assert_eq!(csv.lines().count(), 1 + 6, "{csv}");
    assert!(csv.lines().next().unwrap().starts_with("scenario,attack,channels"));
    assert!(csv.contains("hammer-vs-none/dram-locker/4ch"));
    assert!(csv.lines().next().unwrap().contains("mit:dram-locker"));
    let md = table.to_markdown();
    assert_eq!(md.lines().count(), 2 + 6);
    assert!(md.lines().all(|l| l.starts_with('|')));
}

#[test]
fn xlayer_defense_grid_rides_the_same_rails() {
    assert_eq!(defense_grid::specs().unwrap(), acceptance_grid());
    let table = defense_grid::run().unwrap();
    assert_eq!(table.rows().len(), 6);
}

#[test]
fn failing_specs_keep_their_slot() {
    let mut specs = acceptance_grid();
    specs.insert(2, ScenarioSpec::new("deliberately-empty"));
    let results = SweepRunner::with_threads(3).run(&specs);
    assert_eq!(results.len(), 7);
    assert!(results[2].report.is_err());
    assert!(results.iter().enumerate().all(|(i, r)| i == 2 || r.report.is_ok()));
    // And the strict variant surfaces that error.
    assert!(SweepRunner::with_threads(3).run_reports(&specs).is_err());
}
