//! Half-Double (Kogler et al., USENIX Security 2022): disturbance that
//! reaches *two* rows away from the aggressor. The paper cites it as
//! the attack class that breaks distance-1 mitigation assumptions.
//!
//! With a Half-Double-capable device, a radius-1 protection plan locks
//! only the victim's immediate neighbours — the attacker hammers the
//! row at distance 2 (unlocked!) and still flips the victim. Raising
//! the plan's lock radius to 2 closes the gap.

use dram_locker::attacks::hammer::HammerDriver;
use dram_locker::dram::{RowAddr, RowHammerConfig};
use dram_locker::locker::{DramLocker, LockTarget, LockerConfig, ProtectionPlan};
use dram_locker::memctrl::{MemCtrlConfig, MemRequest, MemoryController};

fn half_double_config() -> MemCtrlConfig {
    let mut config = MemCtrlConfig::tiny_for_tests();
    config.dram.hammer = RowHammerConfig {
        trh: 16,
        half_double_factor: 1, // every crossing also disturbs distance 2
        flips_per_event: 1,
    };
    config
}

/// Hammers the row two below the victim (the Half-Double pattern) and
/// reports whether any victim-row bit changed.
fn half_double_campaign(ctrl: &mut MemoryController, victim: RowAddr) -> (bool, u64) {
    let far_aggressor = RowAddr::new(victim.bank, victim.subarray, victim.row - 2);
    let before = ctrl.dram().read_row(victim).expect("victim row readable");
    // Drive the far aggressor with a conflict row, like the driver does.
    let conflict = HammerDriver::pick_conflict_row(far_aggressor, &ctrl.geometry());
    let aggressor_phys = ctrl.mapper().to_phys(far_aggressor, 0);
    let conflict_phys = ctrl.mapper().to_phys(conflict, 0);
    let mut denied = 0;
    for _ in 0..200 {
        let done = ctrl.service(MemRequest::read(aggressor_phys, 1).untrusted()).expect("request");
        if done.denied {
            denied += 1;
        }
        ctrl.service(MemRequest::read(conflict_phys, 1).untrusted()).expect("request");
    }
    let after = ctrl.dram().read_row(victim).expect("victim row readable");
    (before != after, denied)
}

fn defended_controller(radius: u32, victim_phys: (u64, u64)) -> MemoryController {
    let config = half_double_config();
    let mut ctrl = MemoryController::new(config);
    let mut locker = DramLocker::new(LockerConfig::default(), ctrl.geometry());
    let mut plan = ProtectionPlan::new(LockTarget::AdjacentRows).with_radius(radius);
    plan.protect_range(ctrl.mapper(), victim_phys.0, victim_phys.1).expect("range");
    plan.apply(&mut locker).expect("capacity");
    ctrl.os_protect_range(victim_phys.0, victim_phys.1);
    ctrl.set_hook(Box::new(locker));
    ctrl
}

const VICTIM_ROW: u32 = 20;

fn victim_range(ctrl: &MemoryController) -> (u64, u64) {
    let row_bytes = ctrl.geometry().row_bytes as u64;
    (VICTIM_ROW as u64 * row_bytes, (VICTIM_ROW as u64 + 1) * row_bytes)
}

#[test]
fn half_double_reaches_distance_two_undefended() {
    let mut ctrl = MemoryController::new(half_double_config());
    let victim = RowAddr::new(0, 0, VICTIM_ROW);
    let (flipped, denied) = half_double_campaign(&mut ctrl, victim);
    assert!(flipped, "half-double must disturb at distance 2");
    assert_eq!(denied, 0);
}

#[test]
fn radius_one_plan_misses_the_far_aggressor() {
    // The distance-2 aggressor is not locked: the attack still lands.
    let victim = RowAddr::new(0, 0, VICTIM_ROW);
    let range = {
        let probe = MemoryController::new(half_double_config());
        victim_range(&probe)
    };
    let mut ctrl = defended_controller(1, range);
    let (flipped, denied) = half_double_campaign(&mut ctrl, victim);
    assert!(flipped, "radius-1 locking cannot stop half-double");
    assert_eq!(denied, 0, "the far aggressor is unlocked at radius 1");
}

#[test]
fn radius_two_plan_denies_half_double() {
    let victim = RowAddr::new(0, 0, VICTIM_ROW);
    let range = {
        let probe = MemoryController::new(half_double_config());
        victim_range(&probe)
    };
    let mut ctrl = defended_controller(2, range);
    let (flipped, denied) = half_double_campaign(&mut ctrl, victim);
    assert!(!flipped, "radius-2 locking must stop half-double");
    assert!(denied > 0, "the distance-2 aggressor is locked and denied");
}
