//! End-to-end Bit-Flip Attack through the full stack, composed by the
//! unified Scenario API: trained victim, quantized weights deployed to
//! DRAM, white-box bit selection, a physical RowHammer campaign through
//! the memory controller, and the victim reloading weights from DRAM —
//! with and without DRAM-Locker.

use dram_locker::dnn::models::{self, ModelKind};
use dram_locker::sim::{
    BfaHammerAttack, Budget, LockerMitigation, Scenario, ScenarioRun, VictimSpec,
};

const WEIGHT_BASE: u64 = 0x400;

fn setup(seed: u64, defended: bool) -> ScenarioRun {
    let mut builder = Scenario::builder()
        .victim(VictimSpec::model(ModelKind::Tiny, seed, WEIGHT_BASE))
        .attack(BfaHammerAttack { batch: 48 })
        .budget(Budget { max_activations: 20_000, check_interval: 8, iterations: 1 })
        .eval_batch(32);
    if defended {
        builder = builder.defense(LockerMitigation::adjacent());
    }
    builder.build().expect("scenario builds")
}

#[test]
fn undefended_hammer_lands_and_corrupts_the_model() {
    let victim = models::victim_tiny(31);
    let mut run = setup(31, false);
    let report = run.run().expect("campaign runs");
    assert_eq!(report.landed_flips, 1, "{report:?}");
    assert_eq!(report.denied, 0);

    let target = report.flipped_bits[0];
    let reloaded = run.reload_model(0).expect("load").expect("model victim");
    assert_ne!(reloaded, victim.model, "weight image must be corrupted");
    assert_eq!(
        reloaded.bit(target).expect("in range"),
        !victim.model.bit(target).expect("in range"),
        "exactly the targeted bit flipped"
    );
}

#[test]
fn dram_locker_denies_the_same_campaign() {
    let victim = models::victim_tiny(31);
    let mut run = setup(31, true);
    let report = run.run().expect("campaign runs");
    assert_eq!(report.landed_flips, 0, "{report:?}");
    assert!(report.fully_denied(), "{report:?}");

    let reloaded = run.reload_model(0).expect("load").expect("model victim");
    assert_eq!(reloaded, victim.model, "weights must be untouched");
}

#[test]
fn victim_traffic_still_flows_under_protection() {
    // The defense must not break the victim's own reads: weights load
    // correctly while the lock table is armed (no attack phase here).
    let victim = models::victim_tiny(32);
    let mut run = Scenario::builder()
        .victim(VictimSpec::model(ModelKind::Tiny, 32, WEIGHT_BASE))
        .defense(LockerMitigation::adjacent())
        .build()
        .expect("scenario builds");
    let reloaded = run.reload_model(0).expect("load").expect("model victim");
    assert_eq!(reloaded, victim.model);
    let (x, y) = victim.dataset.test_sample(32, 0);
    let accuracy = reloaded.accuracy(&x, &y).expect("shapes");
    assert!((accuracy - victim.clean_accuracy).abs() < 0.2);
}

#[test]
fn attack_cost_scales_with_trh() {
    // The attacker pays at least TRH activations per flip — the knob
    // behind every defense-time argument in the paper.
    let mut run = setup(33, false);
    let trh = run.controller().dram().config().hammer.trh;
    let report = run.run().expect("campaign runs");
    assert_eq!(report.landed_flips, 1);
    assert!(report.requests >= trh, "needed {} of >= {trh}", report.requests);
}
