//! End-to-end Bit-Flip Attack through the full stack: trained victim,
//! quantized weights deployed to DRAM, white-box bit selection, a
//! physical RowHammer campaign through the memory controller, and the
//! victim reloading weights from DRAM — with and without DRAM-Locker.

use dram_locker::attacks::hammer::{HammerConfig, HammerDriver};
use dram_locker::dnn::models::{self, Victim};
use dram_locker::dnn::{BitIndex, WeightLayout};
use dram_locker::locker::{DramLocker, LockTarget, LockerConfig, ProtectionPlan};
use dram_locker::memctrl::{MemCtrlConfig, MemoryController};

const WEIGHT_BASE: u64 = 0x400;

struct Bench {
    ctrl: MemoryController,
    layout: WeightLayout,
}

fn setup(victim: &Victim, defended: bool) -> Bench {
    let config = MemCtrlConfig::tiny_for_tests();
    let mut ctrl = MemoryController::new(config);
    let layout = WeightLayout::new(WEIGHT_BASE, *ctrl.mapper());
    layout.deploy(&victim.model, ctrl.dram_mut()).expect("image fits");
    let (start, end) = layout.phys_range(&victim.model);
    ctrl.os_protect_range(start, end);
    if defended {
        let mut locker = DramLocker::new(LockerConfig::default(), ctrl.geometry());
        let mut plan = ProtectionPlan::new(LockTarget::AdjacentRows);
        plan.protect_range(ctrl.mapper(), start, end).expect("range maps");
        plan.apply(&mut locker).expect("capacity");
        ctrl.set_hook(Box::new(locker));
    }
    Bench { ctrl, layout }
}

/// An MSB target in the first row of the weight image — the row whose
/// aggressor (one row below the image) the attacker actually owns.
fn edge_target(victim: &Victim) -> BitIndex {
    let (layer, weight) = victim.model.locate_byte(0).expect("image non-empty");
    BitIndex { layer, weight, bit: 7 }
}

#[test]
fn undefended_hammer_lands_and_corrupts_the_model() {
    let victim = models::victim_tiny(31);
    let mut bench = setup(&victim, false);
    let target = edge_target(&victim);
    let (row, bit) = bench.layout.bit_location(&victim.model, target).expect("maps");
    let driver = HammerDriver::new(HammerConfig { max_activations: 20_000, check_interval: 8 });
    let outcome = driver.hammer_bit(&mut bench.ctrl, row, bit).expect("campaign runs");
    assert!(outcome.flipped, "{outcome:?}");
    assert_eq!(outcome.denied, 0);

    let mut reloaded = victim.model.clone();
    bench.layout.load(&mut reloaded, bench.ctrl.dram()).expect("load");
    assert_ne!(reloaded, victim.model, "weight image must be corrupted");
    assert_eq!(
        reloaded.bit(target).expect("in range"),
        !victim.model.bit(target).expect("in range"),
        "exactly the targeted bit flipped"
    );
}

#[test]
fn dram_locker_denies_the_same_campaign() {
    let victim = models::victim_tiny(31);
    let mut bench = setup(&victim, true);
    let target = edge_target(&victim);
    let (row, bit) = bench.layout.bit_location(&victim.model, target).expect("maps");
    let driver = HammerDriver::new(HammerConfig { max_activations: 20_000, check_interval: 8 });
    let outcome = driver.hammer_bit(&mut bench.ctrl, row, bit).expect("campaign runs");
    assert!(!outcome.flipped, "{outcome:?}");
    assert!(outcome.fully_denied(), "{outcome:?}");

    let mut reloaded = victim.model.clone();
    bench.layout.load(&mut reloaded, bench.ctrl.dram()).expect("load");
    assert_eq!(reloaded, victim.model, "weights must be untouched");
}

#[test]
fn victim_traffic_still_flows_under_protection() {
    // The defense must not break the victim's own reads: weights load
    // correctly while the lock table is armed.
    let victim = models::victim_tiny(32);
    let bench = setup(&victim, true);
    let mut reloaded = victim.model.clone();
    bench.layout.load(&mut reloaded, bench.ctrl.dram()).expect("load");
    assert_eq!(reloaded, victim.model);
    let (x, y) = victim.dataset.test_sample(32, 0);
    let accuracy = reloaded.accuracy(&x, &y).expect("shapes");
    assert!((accuracy - victim.clean_accuracy).abs() < 0.2);
}

#[test]
fn attack_cost_scales_with_trh() {
    // The attacker pays at least TRH activations per flip — the knob
    // behind every defense-time argument in the paper.
    let victim = models::victim_tiny(33);
    let mut bench = setup(&victim, false);
    let target = edge_target(&victim);
    let (row, bit) = bench.layout.bit_location(&victim.model, target).expect("maps");
    let trh = bench.ctrl.dram().config().hammer.trh;
    let driver = HammerDriver::new(HammerConfig { max_activations: 20_000, check_interval: 4 });
    let outcome = driver.hammer_bit(&mut bench.ctrl, row, bit).expect("campaign runs");
    assert!(outcome.flipped);
    assert!(outcome.requests >= trh, "needed {} of >= {trh}", outcome.requests);
}
