//! Workspace-wiring smoke test.
//!
//! Reaches one top-level config type through every facade module
//! (`dram_locker::{dram, memctrl, dnn, attacks, locker, defenses,
//! xlayer}`) and constructs the core ones. If a member manifest, a
//! facade re-export in `src/lib.rs`, or a crate-root `pub use crate::…`
//! regresses, this fails at compile time — long before any behavioural
//! test gets a chance to.

use dram_locker::attacks::{BfaConfig, HammerConfig};
use dram_locker::defenses::ShadowModel;
use dram_locker::dnn::TrainConfig;
use dram_locker::dram::{DramConfig, DramGeometry};
use dram_locker::locker::LockerConfig;
use dram_locker::memctrl::MemCtrlConfig;
use dram_locker::xlayer::VariationConfig;

/// Every facade module exposes its top-level config type, and the
/// tier-1 entry points construct.
#[test]
fn facade_reexports_expose_top_level_configs() {
    let dram = DramConfig::tiny_for_tests();
    let memctrl = MemCtrlConfig::tiny_for_tests();
    let locker = LockerConfig::default();
    let bfa = BfaConfig::default();

    assert!(dram.geometry.total_rows() > 0);
    assert_eq!(memctrl.dram.geometry.total_rows(), dram.geometry.total_rows());
    assert!(locker.relock_interval > 0);
    assert!(bfa.candidates_per_layer > 0);

    // The remaining modules only need to resolve; constructing them
    // requires experiment state this smoke test doesn't care about.
    fn assert_named<T>(suffix: &str) {
        let name = std::any::type_name::<T>();
        assert!(name.ends_with(suffix), "{name} should end with {suffix}");
    }
    assert_named::<HammerConfig>("HammerConfig");
    assert_named::<TrainConfig>("TrainConfig");
    assert_named::<ShadowModel>("ShadowModel");
    assert_named::<VariationConfig>("VariationConfig");
    assert_named::<DramGeometry>("DramGeometry");
}

/// The quickstart path from the crate docs stays valid: controller +
/// locker construct and the lock table starts empty.
#[test]
fn quickstart_path_constructs() {
    use dram_locker::locker::DramLocker;
    use dram_locker::memctrl::MemoryController;

    let controller = MemoryController::new(MemCtrlConfig::tiny_for_tests());
    let locker = DramLocker::new(LockerConfig::default(), controller.geometry());
    assert_eq!(locker.lock_table().len(), 0);
}
