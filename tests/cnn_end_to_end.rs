//! End-to-end coverage of the convolutional victim subsystem: a real
//! ResNet-20-shaped CNN (conv stems, residual skips, pooling, dense
//! head) trained, quantized, deployed into DRAM rows and driven
//! through the unified Scenario pipeline — on serial and sharded
//! engines, under attack and under the locker defense.

use dram_locker::dnn::models;
use dram_locker::dnn::models::ModelKind;
use dram_locker::dnn::{QuantizedMlp, WeightLayout};
use dram_locker::memctrl::{AddressMapper, MemCtrlConfig};
use dram_locker::sim::{
    find, AttackSpec, BfaHammerAttack, Budget, ChannelRouter, EngineConfig, LockerMitigation,
    Scenario, VictimSpec,
};

const WEIGHT_BASE: u64 = 0x400;

/// The victim's shard-local weight-fetch trace lifted onto an
/// `n`-channel global address space, homed on channel 0.
fn fetch_trace(model: &QuantizedMlp, channels: usize) -> dram_locker::memctrl::Trace {
    let config = MemCtrlConfig::tiny_for_tests();
    let mapper = AddressMapper::new(config.dram.geometry, config.scheme);
    let layout = WeightLayout::new(WEIGHT_BASE, mapper);
    let local = layout.fetch_trace(model, 2, 32).expect("image fits the tiny device");
    ChannelRouter::new(channels, &mapper).globalize_trace(&local, 0).expect("channel 0")
}

/// Acceptance: the ResNet-20-shaped CNN victim runs end-to-end through
/// `Scenario::builder()` on both the serial and the 2-channel sharded
/// engine, and the parallel run's report is bit-identical to the
/// serial reference.
#[test]
fn resnet20_cnn_reports_identical_on_serial_and_sharded_engines() {
    let victim = models::victim_resnet20_cnn(42);
    assert!(victim.clean_accuracy > 0.6, "clean accuracy {}", victim.clean_accuracy);
    assert!(victim.model.to_mlp().is_none(), "the victim must be a real CNN");
    let run = |engine: EngineConfig| {
        Scenario::builder()
            .label("cnn-sharded-identity")
            .engine(engine)
            .victim(VictimSpec::model(ModelKind::Resnet20Cnn, 42, WEIGHT_BASE))
            .attack(AttackSpec::trace(fetch_trace(&victim.model, 2)))
            .defense(LockerMitigation::adjacent())
            .build()
            .expect("scenario builds")
            .run()
            .expect("replay runs")
    };
    let parallel = run(EngineConfig::sharded(2));
    let serial = run(EngineConfig::serial_reference(2));
    assert_eq!(parallel, serial, "sharded run must be bit-identical to the serial reference");
    assert_eq!(parallel.channels, 2);
    assert!(parallel.requests > 0);
    // The weight fetch is the victim's own (trusted) traffic: the
    // locker must not harm it, and the model must survive intact.
    assert!(!parallel.harmed());
    assert_eq!(parallel.victims[0].accuracy_after_pct, parallel.victims[0].accuracy_before_pct);
}

/// Acceptance: the BFA catalog entry degrades the CNN's accuracy, and
/// the locker's 9.6% flip-landing rate measurably suppresses the
/// degradation of the *same* campaign.
#[test]
fn cnn_bfa_collapses_accuracy_and_locker_suppresses_it() {
    let undefended = find("cnn-bfa-vs-none").unwrap().scenario().build().unwrap().run().unwrap();
    assert!(undefended.landed_flips > 0);
    assert!(
        undefended.accuracy_delta_pct() > 20.0,
        "BFA should collapse CNN accuracy: {:?}",
        undefended.victims[0]
    );
    // Every landed flip targeted an MSB-range bit of some weighted
    // layer — conv kernels included (the ResNet-shaped victim has 22
    // weighted layers, only the last of which is dense).
    assert!(undefended.flipped_bits.iter().all(|bit| bit.bit >= 6));
    assert!(
        undefended.flipped_bits.iter().any(|bit| bit.layer < 21),
        "at least one flip must land in a conv kernel: {:?}",
        undefended.flipped_bits
    );

    let defended =
        find("cnn-bfa-vs-dram-locker").unwrap().scenario().build().unwrap().run().unwrap();
    assert!(defended.landed_flips < undefended.landed_flips);
    assert!(
        defended.accuracy_delta_pct() < undefended.accuracy_delta_pct() - 10.0,
        "locker must suppress the degradation: defended {:.1} vs undefended {:.1}",
        defended.accuracy_delta_pct(),
        undefended.accuracy_delta_pct()
    );
}

/// The physical edge-row BFA campaign against a CNN victim: the
/// gradient scan picks a conv-kernel MSB in the image's first DRAM
/// row, the hammer lands it, and the reloaded model shows exactly
/// that corruption — unless the locker denies the campaign.
#[test]
fn physical_bfa_corrupts_a_conv_kernel_and_locker_denies_it() {
    let victim = models::victim_tiny_cnn(7);
    let setup = |defended: bool| {
        let mut builder = Scenario::builder()
            .victim(VictimSpec::model(ModelKind::TinyCnn, 7, WEIGHT_BASE))
            .attack(BfaHammerAttack { batch: 32 })
            .budget(Budget { max_activations: 20_000, check_interval: 8, iterations: 1 })
            .eval_batch(32);
        if defended {
            builder = builder.defense(LockerMitigation::adjacent());
        }
        builder.build().expect("scenario builds")
    };

    let mut run = setup(false);
    let report = run.run().expect("campaign runs");
    assert_eq!(report.landed_flips, 1, "{report:?}");
    let target = report.flipped_bits[0];
    let reloaded = run.reload_model(0).expect("load").expect("model victim");
    assert_ne!(reloaded, victim.model);
    assert_eq!(reloaded.bit(target).unwrap(), !victim.model.bit(target).unwrap());

    let mut run = setup(true);
    let defended = run.run().expect("campaign runs");
    assert_eq!(defended.landed_flips, 0);
    assert!(defended.fully_denied(), "{defended:?}");
    let reloaded = run.reload_model(0).expect("load").expect("model victim");
    assert_eq!(reloaded, victim.model, "weights must be untouched under the locker");
}
