//! Golden tests for spec-file diagnostics: a malformed `.dlk` line must
//! be reported with its 1-based line number AND the offending line's
//! text, in a stable human-readable shape — this is the error surface
//! `dlk run`/`dlk sweep`/`dlk serve` print to operators, so the exact
//! rendering is part of the CLI contract.

use dram_locker::sim::ScenarioSpec;

fn parse_err(source: &str) -> String {
    ScenarioSpec::from_text(source).expect_err("spec must be rejected").to_string()
}

#[test]
fn unknown_record_names_the_line_and_quotes_it() {
    let err = parse_err("# dlk-scenario v1\nbogus record\n");
    assert_eq!(err, "spec parse: line 2: unknown record 'bogus'\n  2 | bogus record");
}

#[test]
fn bad_number_points_at_the_offending_line() {
    let err = parse_err("# dlk-scenario v1\nlabel x\nattack hammer bit=nope\n");
    assert_eq!(err, "spec parse: line 3: bad number 'nope'\n  3 | attack hammer bit=nope");
}

#[test]
fn missing_field_is_reported_with_line_context() {
    let err = parse_err("# dlk-scenario v1\nlabel x\nvictim rows home=0\n");
    assert_eq!(err, "spec parse: line 3: missing field 'protect'\n  3 | victim rows home=0");
}

#[test]
fn line_numbers_survive_leading_comments_and_blanks() {
    let err = parse_err("# dlk-scenario v1\n\n# a comment\n\nbudget activations=\n");
    assert!(
        err.starts_with("spec parse: line 5: "),
        "line number must count comments and blanks: {err}"
    );
    assert!(err.ends_with("  5 | budget activations="), "must quote the line: {err}");
}

#[test]
fn list_parse_errors_keep_whole_file_line_numbers() {
    // Two concatenated specs; the typo is in the SECOND chunk, and the
    // reported line number must still be file-absolute.
    let good = dram_locker::sim::catalog()[0].spec.to_text();
    let good_lines = good.trim_end().lines().count();
    let source = format!("{good}label second\nattack hammer bit=oops\n");
    let err = ScenarioSpec::list_from_text(&source).expect_err("second chunk must fail");
    let expected_line = good_lines + 2;
    assert_eq!(
        err.to_string(),
        format!(
            "spec parse: line {expected_line}: bad number 'oops'\n  \
             {expected_line} | attack hammer bit=oops"
        )
    );
}

#[test]
fn missing_spec_file_reports_the_path() {
    let err = ScenarioSpec::from_file(std::path::Path::new("/nonexistent/specs/x.dlk"))
        .expect_err("missing file must error");
    let text = err.to_string();
    assert!(
        text.starts_with("io: /nonexistent/specs/x.dlk: "),
        "io errors must carry the path: {text}"
    );
}
