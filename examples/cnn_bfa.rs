//! Progressive BFA against the ResNet-20-shaped CNN victim, with and
//! without DRAM-Locker.
//!
//! The victim is a real convolutional network — conv stem, nine
//! identity-skip residual blocks, pooling transitions, dense head —
//! trained on the CIFAR-10 image stand-in, 8-bit quantized and
//! deployed into DRAM rows. The white-box bit search ranks and flips
//! conv-kernel MSBs through exactly the same machinery as the MLP
//! scenarios; the locker drops the flip-landing rate to 9.6% (§IV-D)
//! and the accuracy trajectory barely moves.
//!
//! Run with: `cargo run --release --example cnn_bfa`

use dram_locker::sim::{find, RunReport};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let undefended = find("cnn-bfa-vs-none").expect("catalog entry").scenario().build()?.run()?;
    let defended =
        find("cnn-bfa-vs-dram-locker").expect("catalog entry").scenario().build()?.run()?;

    println!("== Progressive BFA vs ResNet-20-shaped CNN ==");
    println!("{}", RunReport::csv_header());
    for report in [&undefended, &defended] {
        println!("{}", report.to_csv_row());
        let curve: Vec<String> =
            report.curve.iter().map(|(i, acc)| format!("{i}:{acc:.0}%")).collect();
        println!("  trajectory {}", curve.join(" "));
    }

    // The flips that landed name conv kernels: BitIndex.layer indexes
    // the 22 weighted layers, of which only the last is dense.
    let conv_flips = undefended.flipped_bits.iter().filter(|bit| bit.layer < 21).count();
    println!("undefended flips in conv kernels: {conv_flips}/{}", undefended.flipped_bits.len());

    assert!(undefended.accuracy_delta_pct() > 20.0, "BFA must collapse the CNN");
    assert!(
        defended.accuracy_delta_pct() < undefended.accuracy_delta_pct(),
        "the locker must suppress the degradation"
    );
    println!(
        "locker kept {:.1} accuracy points the attacker destroyed",
        undefended.accuracy_delta_pct() - defended.accuracy_delta_pct()
    );
    Ok(())
}
