//! Serving queue: the work-stealing `SweepRunner` as a job server —
//! specs go in, per-job outcomes stream out in completion order, and
//! the returned vector is still in spec order, bit-identical to a
//! serial run. This is the queue underneath `dlk sweep` and the
//! `dlk serve` spool daemon.
//!
//! Run with: `cargo run --example serving_queue`

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use dram_locker::sim::{catalog, JobStatus, SweepRunner};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small batch of named scenarios from the catalog, as specs.
    let specs: Vec<_> = catalog()
        .into_iter()
        .filter(|entry| entry.name.starts_with("hammer-vs-"))
        .map(|entry| entry.spec)
        .collect();
    println!("queueing {} specs on {} workers", specs.len(), SweepRunner::parallel().threads());

    // 1. The progress callback fires once per job, in completion order,
    //    from worker threads — this is where `dlk sweep` streams CSV
    //    rows and `dlk serve` appends its checkpoint journal.
    let streamed = Arc::new(AtomicUsize::new(0));
    let seen = Arc::clone(&streamed);
    let outcomes = SweepRunner::parallel()
        .timeout(Duration::from_secs(30)) // a hung job can't wedge the queue
        .on_progress(move |outcome| {
            seen.fetch_add(1, Ordering::Relaxed);
            println!(
                "  [{}] {} on worker {:?} in {:?}{}",
                outcome.status().token(),
                outcome.label,
                outcome.worker,
                outcome.wall,
                if outcome.stolen { " (stolen)" } else { "" },
            );
            true // returning false would cancel the rest of the queue
        })
        .run_jobs(&specs);
    assert_eq!(streamed.load(Ordering::Relaxed), specs.len());

    // 2. Outcomes come back in spec order regardless of which worker
    //    finished first, and agree bit-for-bit with a serial run.
    let serial = SweepRunner::serial().run_jobs(&specs);
    for (parallel_out, serial_out) in outcomes.iter().zip(&serial) {
        assert_eq!(parallel_out.label, serial_out.label);
        assert_eq!(
            parallel_out.report.as_ref().ok(),
            serial_out.report.as_ref().ok(),
            "parallel scheduling must not change results"
        );
    }
    let done = outcomes.iter().filter(|o| o.status() == JobStatus::Done).count();
    println!("{done}/{} done, results in spec order, bit-identical to serial", outcomes.len());

    // 3. Panics are isolated: a poisoned job is one failed outcome, not
    //    a crashed queue (this is what keeps the spool daemon alive).
    //    Hush the default hook so the intentional panic doesn't splat a
    //    backtrace over the demo output.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mixed = SweepRunner::parallel().run_fn(4, |index| {
        if index == 2 {
            panic!("job 2 is poisoned");
        }
        Err(dram_locker::sim::SimError::Build(format!("noop {index}")))
    });
    std::panic::set_hook(default_hook);
    assert_eq!(mixed[2].status(), JobStatus::Panicked);
    assert!(mixed.iter().all(|o| o.status() != JobStatus::Cancelled));
    println!("poisoned job isolated: {:?}", mixed[2].status());
    Ok(())
}
