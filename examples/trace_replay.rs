//! Trace-driven workload replay on the sharded multi-channel engine.
//!
//! Four tenants — a streaming reader, a strided scanner, a pointer
//! chaser and a RowHammer attacker — are interleaved into one trace,
//! serialized through the workspace trace codec (round-tripping like a
//! recorded trace file would), and replayed over a 4-channel sharded
//! engine twice: undefended, then with per-shard DRAM-Locker lock-table
//! slices. The parallel run's report is asserted bit-identical to the
//! serial reference.
//!
//! Run with: `cargo run --release --example trace_replay`

use dram_locker::memctrl::Trace;
use dram_locker::sim::{
    AttackSpec, EngineConfig, LockerMitigation, RunReport, Scenario, VictimSpec, Workload,
};

const ROW_BYTES: u64 = 64; // tiny geometry
const CHANNELS: usize = 4;

/// Global rows stripe over channels, so channel 0's local rows 19/21
/// (the aggressor-candidate neighbours of victim row 20) are global
/// rows 76/84 on a 4-channel engine.
fn tenant_mix() -> Trace {
    Workload::multi_tenant(&[
        Workload::Sequential { base: 0, len: 8, count: 600 },
        Workload::Strided { base: 0, stride: CHANNELS as u64 * ROW_BYTES, len: 4, count: 200 },
        Workload::PointerChase { base: 0, span: 512 * ROW_BYTES, len: 8, count: 600, seed: 42 },
        Workload::HammerLoop { addr_a: 76 * ROW_BYTES, addr_b: 84 * ROW_BYTES, iterations: 300 },
    ])
}

fn replay(engine: EngineConfig, trace: &Trace, defended: bool) -> RunReport {
    let mut builder = Scenario::builder()
        .label(if defended { "replay-defended" } else { "replay-undefended" })
        .engine(engine)
        // Two tenants' secrets, homed on different channels.
        .victim_on(VictimSpec::row(20, 0xA5), 0)
        .victim_on(VictimSpec::row(20, 0x5A), 1)
        .attack(AttackSpec::trace(trace.clone()));
    if defended {
        builder = builder.defense(LockerMitigation::adjacent());
    }
    builder.build().expect("scenario builds").run().expect("replay runs")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Generate the multi-tenant trace and round-trip it through the
    //    trace-file codec, exactly as a recorded trace would be loaded.
    let recorded = tenant_mix();
    let text = recorded.to_text();
    let trace = Trace::from_text(&text)?;
    assert_eq!(trace, recorded);
    println!("trace: {} ops, {} bytes serialized", trace.len(), text.len());

    // 2. Undefended replay across 4 sharded channels: the hammer tenant
    //    corrupts channel 0's victim; channel 1's tenant is untouched.
    let undefended = replay(EngineConfig::sharded(CHANNELS), &trace, false);
    println!(
        "undefended: {} requests over {} channels, victim A intact: {:?}, victim B intact: {:?}",
        undefended.requests,
        undefended.channels,
        undefended.victims[0].data_intact,
        undefended.victims[1].data_intact,
    );
    assert_eq!(undefended.victims[0].data_intact, Some(false));
    assert_eq!(undefended.victims[1].data_intact, Some(true));

    // 3. Same mix with DRAM-Locker mounted per shard: every shard
    //    guards its own victims with its slice of the lock table.
    let defended = replay(EngineConfig::sharded(CHANNELS), &trace, true);
    println!(
        "defended:   {} of {} requests denied, both victims intact: {:?}/{:?}",
        defended.denied,
        defended.requests,
        defended.victims[0].data_intact,
        defended.victims[1].data_intact,
    );
    assert_eq!(defended.victims[0].data_intact, Some(true));
    assert_eq!(defended.victims[1].data_intact, Some(true));
    assert!(defended.denied > 0);

    // 4. Determinism: the threaded run equals the serial reference,
    //    bit for bit.
    let reference = replay(EngineConfig::serial_reference(CHANNELS), &trace, true);
    assert_eq!(defended, reference);
    println!("parallel report is bit-identical to the serial reference");

    println!(
        "merged controller stats: served {}, denied {}, mean latency {:.1} cycles",
        defended.controller.served,
        defended.controller.denied,
        defended.controller.mean_latency(),
    );
    Ok(())
}
