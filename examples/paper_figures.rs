//! Regenerates every table and figure of the paper in one run.
//!
//! Run with: `cargo run --release --example paper_figures -- [--fast]`
//!
//! `--fast` shrinks models and budgets (seconds instead of minutes);
//! the default full mode reproduces the paper-scale numbers recorded
//! in EXPERIMENTS.md.

use dram_locker::sim;
use dram_locker::xlayer::experiments::{
    defense_grid, fig1a, fig1b, fig7a, fig7b, fig8, generations, mc_variation, overhead_inference,
    pta, table1, table2, Fidelity,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fidelity =
        if std::env::args().any(|a| a == "--fast") { Fidelity::Fast } else { Fidelity::Full };
    println!("running all paper experiments at {fidelity:?} fidelity\n");

    println!("{}", fig1b::run());
    println!("{}", mc_variation::run(fidelity));
    println!("{}", table1::run());

    println!("{}", fig1a::run(fidelity).render());

    let fig7a_result = fig7a::run(fidelity);
    println!("{}", fig7a_result.render());
    println!("{}", fig7b::run());

    for panel in fig8::run(fidelity) {
        println!("{}", panel.render());
    }

    println!("{}", table2::run(fidelity));
    println!("{}", pta::run()?);
    println!("{}", overhead_inference::run()?);
    println!("{}", generations::run());

    println!("scenario catalog (run any with sim::find(name); every entry is a spec file):");
    for entry in sim::catalog() {
        println!("  {:<28} {:<20} {}", entry.name, entry.artifact, entry.description);
    }

    // The channel × defense grid through the parallel sweep runner —
    // the CSV below is the figure data CI surfaces in the job log.
    let grid = defense_grid::run()?;
    println!("\nsweep: hammer campaign over {{1,2,4 channels}} x {{none, dram-locker}}");
    println!("{grid}");
    println!("-- begin defense_grid.csv --");
    print!("{}", grid.to_csv());
    println!("-- end defense_grid.csv --");

    println!("done — compare against EXPERIMENTS.md");
    Ok(())
}
