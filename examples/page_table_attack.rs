//! The Page Table Attack scenario (§V of the paper): instead of
//! hammering weight rows, the attacker flips one PFN bit in the
//! victim's DRAM-resident page table, redirecting a weight page to an
//! attacker-staged poisoned frame. DRAM-Locker protects the page table
//! the same way it protects data rows.
//!
//! Both runs come out of the scenario catalog — the same pipelines the
//! `pta` experiment sweeps.
//!
//! Run with: `cargo run --release --example page_table_attack`

use dram_locker::sim;
use dram_locker::xlayer::experiments::pta;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let table = pta::run()?;
    println!("{table}");

    let undefended = sim::find("pta-vs-none").expect("catalog entry").scenario().build()?.run()?;
    let defended =
        sim::find("pta-vs-dram-locker").expect("catalog entry").scenario().build()?.run()?;
    println!(
        "undefended: PTE redirected={}, accuracy {:.1}% -> {:.1}%",
        undefended.redirected,
        undefended.victim().accuracy_before_pct.unwrap_or(0.0),
        undefended.victim().accuracy_after_pct.unwrap_or(0.0)
    );
    println!(
        "defended:   PTE redirected={}, accuracy {:.1}% -> {:.1}%, {} hammer accesses denied",
        defended.redirected,
        defended.victim().accuracy_before_pct.unwrap_or(0.0),
        defended.victim().accuracy_after_pct.unwrap_or(0.0),
        defended.denied
    );
    assert!(undefended.redirected && !defended.redirected);
    Ok(())
}
