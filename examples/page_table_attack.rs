//! The Page Table Attack scenario (§V of the paper): instead of
//! hammering weight rows, the attacker flips one PFN bit in the
//! victim's DRAM-resident page table, redirecting a weight page to an
//! attacker-staged poisoned frame. DRAM-Locker protects the page table
//! the same way it protects data rows.
//!
//! Run with: `cargo run --release --example page_table_attack`

use dram_locker::xlayer::experiments::pta;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let table = pta::run()?;
    println!("{table}");

    let undefended = pta::run_scenario(false)?;
    let defended = pta::run_scenario(true)?;
    println!(
        "undefended: PTE redirected={}, accuracy {:.1}% -> {:.1}%",
        undefended.redirected, undefended.accuracy_before_pct, undefended.accuracy_after_pct
    );
    println!(
        "defended:   PTE redirected={}, accuracy {:.1}% -> {:.1}%, {} hammer accesses denied",
        defended.redirected,
        defended.accuracy_before_pct,
        defended.accuracy_after_pct,
        defended.denied
    );
    assert!(undefended.redirected && !defended.redirected);
    Ok(())
}
