//! Quickstart: one `Scenario` composes a victim row, a probing
//! attacker and the DRAM-Locker defense — watch the lock table deny the
//! attacker while the legitimate program is served via SWAP + redirect.
//!
//! Run with: `cargo run --example quickstart`

use dram_locker::memctrl::MemRequest;
use dram_locker::sim::{LockerMitigation, RowProbe, Scenario, VictimSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The whole pipeline in one builder: a secret-filled DRAM row,
    // locked by DRAM-Locker, probed 1000 times by an untrusted process.
    let mut run = Scenario::builder()
        .label("quickstart")
        .victim(VictimSpec::row(10, 0x42))
        .defense(LockerMitigation::data_rows())
        .attack(RowProbe { accesses: 1000 })
        .build()?;
    let report = run.run()?;

    // 1. Every attacker access was denied: the instruction is skipped,
    //    so the attack phase issued no DRAM command at all.
    assert_eq!(report.denied, 1000);
    println!(
        "attacker: {} accesses, all denied; DRAM cycles spent on them: {}",
        report.requests, report.cycles
    );

    // 2. The victim program still got its data: the integrity probe
    //    read the locked row through a SWAP + redirect.
    assert_eq!(report.victims[0].data_intact, Some(true));
    println!("victim: read served via SWAP + redirect, data intact");

    // 3. The same pipeline stays open for more traffic: a trusted read
    //    of the locked row returns the secret.
    let row_bytes = run.controller().geometry().row_bytes as u64;
    let done = run.controller_mut().service(MemRequest::read(10 * row_bytes, 4))?;
    assert!(!done.denied);
    assert_eq!(done.data.as_deref(), Some(&[0x42u8; 4][..]));

    // 4. Defense bookkeeping comes with the report — the report's
    //    Display impl renders the whole thing aligned.
    println!("\n{report}");
    Ok(())
}
