//! Quickstart: lock a DRAM row, watch DRAM-Locker deny an attacker and
//! transparently swap-unlock for the legitimate program.
//!
//! Run with: `cargo run --example quickstart`

use dram_locker::locker::{DramLocker, LockerConfig};
use dram_locker::memctrl::{MemCtrlConfig, MemRequest, MemoryController};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small DRAM device behind a memory controller.
    let config = MemCtrlConfig::tiny_for_tests();
    let row_bytes = config.dram.geometry.row_bytes as u64;

    // Build the defense: lock physical row 10.
    let mut locker = DramLocker::new(LockerConfig::default(), config.dram.geometry);
    locker.lock_phys_range(10 * row_bytes, 11 * row_bytes)?;
    let mut ctrl = MemoryController::with_hook(config, Box::new(locker));

    // Seed the locked row with some data (functional write).
    let secret = vec![0x42u8; row_bytes as usize];
    let (locked_row, _) = ctrl.mapper().to_dram(10 * row_bytes)?;
    ctrl.dram_mut().write_row(locked_row, &secret)?;

    // 1. The attacker (untrusted process) hammers the locked row:
    //    every access is denied, no DRAM activation happens.
    for _ in 0..1000 {
        let done = ctrl.service(MemRequest::read(10 * row_bytes, 1).untrusted())?;
        assert!(done.denied);
    }
    println!(
        "attacker: 1000 accesses, all denied; DRAM activations caused: {}",
        ctrl.dram().stats().total_activations()
    );

    // 2. The victim program needs its data: DRAM-Locker swaps the row
    //    to a free location and redirects the access there.
    let done = ctrl.service(MemRequest::read(10 * row_bytes, 4))?;
    assert!(!done.denied);
    assert_eq!(done.data.as_deref(), Some(&[0x42u8; 4][..]));
    println!("victim: read served via SWAP + redirect, data intact");

    // 3. Defense bookkeeping.
    let stats = ctrl.hook();
    println!("defense hook installed: {}", stats.name());
    println!("controller stats: {:?}", ctrl.stats());
    Ok(())
}
