//! Mounts every RowHammer defense in the workspace on the same memory
//! controller and subjects each to the same hammer campaign, then
//! prints the Table I overhead comparison.
//!
//! Run with: `cargo run --release --example defense_comparison`

use dram_locker::attacks::hammer::{HammerConfig, HammerDriver};
use dram_locker::defenses::{
    CounterDefenseHook, CounterPerRow, Graphene, Hydra, RowSwapDefense, Shadow, SwapPolicy, Twice,
};
use dram_locker::dram::RowAddr;
use dram_locker::locker::{DramLocker, LockerConfig};
use dram_locker::memctrl::{DefenseHook, MemCtrlConfig, MemoryController};
use dram_locker::xlayer::experiments::table1;

fn campaign(hook: Option<Box<dyn DefenseHook>>) -> (bool, u64, u64) {
    let config = MemCtrlConfig::tiny_for_tests(); // TRH = 16
    let mut ctrl = match hook {
        Some(hook) => MemoryController::with_hook(config, hook),
        None => MemoryController::new(config),
    };
    let victim = RowAddr::new(0, 0, 20);
    let driver = HammerDriver::new(HammerConfig { max_activations: 5_000, check_interval: 8 });
    let outcome = driver.hammer_bit(&mut ctrl, victim, 99).expect("campaign runs");
    (outcome.flipped, outcome.requests, outcome.denied)
}

fn main() {
    let geometry = MemCtrlConfig::tiny_for_tests().dram.geometry;
    println!("hammer campaign against row 20, TRH = 16, budget 5000 activations\n");
    println!("{:<18} {:>8} {:>10} {:>8}", "defense", "flipped", "requests", "denied");

    let rows: Vec<(&str, Option<Box<dyn DefenseHook>>)> = vec![
        ("none", None),
        ("graphene", Some(Box::new(CounterDefenseHook::new(Graphene::new(64, 8))))),
        ("hydra", Some(Box::new(CounterDefenseHook::new(Hydra::new(16, 4, 8))))),
        ("twice", Some(Box::new(CounterDefenseHook::new(Twice::new(8, 64, 1))))),
        ("counter-per-row", Some(Box::new(CounterDefenseHook::new(CounterPerRow::new(8))))),
        ("rrs", Some(Box::new(RowSwapDefense::new(SwapPolicy::Randomized, 8, 1)))),
        ("srs", Some(Box::new(RowSwapDefense::new(SwapPolicy::Secure, 8, 1)))),
        ("shadow", Some(Box::new(Shadow::new(8, 1)))),
        ("dram-locker", {
            let mut locker = DramLocker::new(LockerConfig::default(), geometry);
            // Lock the aggressor-candidate rows around the victim.
            locker.lock_row(RowAddr::new(0, 0, 19)).expect("capacity");
            locker.lock_row(RowAddr::new(0, 0, 21)).expect("capacity");
            Some(Box::new(locker))
        }),
    ];

    for (name, hook) in rows {
        let (flipped, requests, denied) = campaign(hook);
        println!("{name:<18} {flipped:>8} {requests:>10} {denied:>8}");
    }

    println!();
    println!("{}", table1::run());
}
