//! Mounts every RowHammer defense in the workspace on the same
//! scenario and subjects each to the same hammer campaign, then prints
//! the Table I overhead comparison.
//!
//! Run with: `cargo run --release --example defense_comparison`

use dram_locker::defenses::{CounterPerRow, Graphene, Hydra, SwapPolicy, Twice};
use dram_locker::sim::{
    Budget, HammerAttack, LockerMitigation, Mitigation, RowSwapMitigation, Scenario,
    ShadowMitigation, TrackerMitigation, VictimSpec,
};
use dram_locker::xlayer::experiments::table1;

fn campaign(defense: Option<Box<dyn Mitigation>>) -> (bool, u64, u64) {
    // TRH = 16 on the tiny test geometry (the builder's default).
    let mut builder = Scenario::builder()
        .label("defense-comparison")
        .victim(VictimSpec::row(20, 0xA5))
        .attack(HammerAttack::bit(99))
        .budget(Budget { max_activations: 5_000, check_interval: 8, iterations: 1 });
    if let Some(defense) = defense {
        builder = builder.defense(defense);
    }
    let report = builder.build().expect("scenario builds").run().expect("campaign runs");
    (report.landed_flips > 0, report.requests, report.denied)
}

fn main() {
    println!("hammer campaign against row 20, TRH = 16, budget 5000 activations\n");
    println!("{:<18} {:>8} {:>10} {:>8}", "defense", "flipped", "requests", "denied");

    let rows: Vec<(&str, Option<Box<dyn Mitigation>>)> = vec![
        ("none", None),
        ("graphene", Some(Box::new(TrackerMitigation::new(Graphene::new(64, 8))))),
        ("hydra", Some(Box::new(TrackerMitigation::new(Hydra::new(16, 4, 8))))),
        ("twice", Some(Box::new(TrackerMitigation::new(Twice::new(8, 64, 1))))),
        ("counter-per-row", Some(Box::new(TrackerMitigation::new(CounterPerRow::new(8))))),
        ("rrs", Some(Box::new(RowSwapMitigation::new(SwapPolicy::Randomized, 8, 1)))),
        ("srs", Some(Box::new(RowSwapMitigation::new(SwapPolicy::Secure, 8, 1)))),
        ("shadow", Some(Box::new(ShadowMitigation::new(8, 1)))),
        // The protection plan locks the aggressor-candidate rows
        // around the guarded victim row.
        ("dram-locker", Some(Box::new(LockerMitigation::adjacent()))),
    ];

    for (name, defense) in rows {
        let (flipped, requests, denied) = campaign(defense);
        println!("{name:<18} {flipped:>8} {requests:>10} {denied:>8}");
    }

    println!();
    println!("{}", table1::run());
}
