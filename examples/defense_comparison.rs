//! Mounts every RowHammer defense in the workspace on the same
//! scenario and subjects each to the same hammer campaign, then prints
//! the Table I overhead comparison.
//!
//! Run with: `cargo run --release --example defense_comparison`

use dram_locker::sim::{Budget, DefenseSpec, HammerAttack, Scenario, VictimSpec};
use dram_locker::xlayer::experiments::table1;

fn campaign(defense: Option<DefenseSpec>) -> (bool, u64, u64) {
    // TRH = 16 on the tiny test geometry (the builder's default).
    let mut builder = Scenario::builder()
        .label("defense-comparison")
        .victim(VictimSpec::row(20, 0xA5))
        .attack(HammerAttack::bit(99))
        .budget(Budget { max_activations: 5_000, check_interval: 8, iterations: 1 });
    if let Some(defense) = defense {
        builder = builder.defense(defense);
    }
    let report = builder.build().expect("scenario builds").run().expect("campaign runs");
    (report.landed_flips > 0, report.requests, report.denied)
}

fn main() {
    println!("hammer campaign against row 20, TRH = 16, budget 5000 activations\n");
    println!("{:<18} {:>8} {:>10} {:>8}", "defense", "flipped", "requests", "denied");

    let rows: Vec<(&str, Option<DefenseSpec>)> = vec![
        ("none", None),
        ("graphene", Some(DefenseSpec::graphene(64, 8))),
        ("hydra", Some(DefenseSpec::hydra(16, 4, 8))),
        ("twice", Some(DefenseSpec::twice(8, 64, 1))),
        ("counter-per-row", Some(DefenseSpec::counter_per_row(8))),
        ("rrs", Some(DefenseSpec::rrs(8, 1))),
        ("srs", Some(DefenseSpec::srs(8, 1))),
        ("shadow", Some(DefenseSpec::shadow(8, 1))),
        // The protection plan locks the aggressor-candidate rows
        // around the guarded victim row.
        ("dram-locker", Some(DefenseSpec::locker_adjacent())),
    ];

    for (name, defense) in rows {
        let (flipped, requests, denied) = campaign(defense);
        println!("{name:<18} {flipped:>8} {requests:>10} {denied:>8}");
    }

    println!();
    println!("{}", table1::run());
}
