//! The paper's headline scenario: a quantized DNN's weights live in
//! DRAM; a co-located attacker uses RowHammer to flip the weight bit
//! progressive bit search selects. Without DRAM-Locker the flip lands
//! and accuracy drops; with the protection plan locking the
//! aggressor-candidate rows, every hammer access is denied.
//!
//! The OS already isolates the victim's own pages (an unprivileged
//! attacker cannot *address* them), so the attacker's only aggressors
//! are the unowned rows physically adjacent to the weight image —
//! exactly the rows the protection plan locks.
//!
//! Run with: `cargo run --release --example protect_dnn_weights`

use dram_locker::attacks::hammer::{HammerConfig, HammerDriver};
use dram_locker::dnn::models;
use dram_locker::dnn::{BitIndex, WeightLayout};
use dram_locker::locker::{DramLocker, LockTarget, LockerConfig, ProtectionPlan};
use dram_locker::memctrl::{MemCtrlConfig, MemoryController};

const WEIGHT_BASE: u64 = 0x400;

/// The most damaging MSB flip among weights in the *first row* of the
/// weight image — the row whose aggressor the attacker can reach.
fn best_edge_target(
    victim: &models::Victim,
    layout: &WeightLayout,
    x: &dram_locker::dnn::Tensor,
    y: &[usize],
) -> BitIndex {
    let (_, grads) = victim.model.loss_and_grads(x, y).expect("shapes consistent");
    let row_bytes = layout.mapper().geometry().row_bytes;
    let edge_bytes = row_bytes - (WEIGHT_BASE as usize % row_bytes).min(row_bytes);
    let mut best: Option<(f32, BitIndex)> = None;
    for offset in 0..edge_bytes.min(victim.model.total_weights()) {
        let (layer, weight) = victim.model.locate_byte(offset).expect("offset in image");
        let index = BitIndex { layer, weight, bit: 7 };
        let delta = victim.model.flip_delta(index).expect("valid index");
        let gain = grads[layer].weight.as_slice()[weight] * delta;
        if gain > 0.0 && best.is_none_or(|(b, _)| gain > b) {
            best = Some((gain, index));
        }
    }
    best.expect("an edge-row weight with positive gain exists").1
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Train and quantize the victim, then deploy its weights to DRAM.
    let victim = models::victim_tiny(21);
    let (x, y) = victim.dataset.test_sample(48, 0);
    println!("victim trained: clean accuracy {:.1}%", victim.clean_accuracy * 100.0);

    let run = |defended: bool| -> Result<(f64, u64), Box<dyn std::error::Error>> {
        let config = MemCtrlConfig::tiny_for_tests();
        let mut ctrl = MemoryController::new(config);
        let layout = WeightLayout::new(WEIGHT_BASE, *ctrl.mapper());
        layout.deploy(&victim.model, ctrl.dram_mut())?;
        // The OS isolates the victim's pages from the attacker.
        let (start, end) = layout.phys_range(&victim.model);
        ctrl.os_protect_range(start, end);

        if defended {
            // Register the weight image with the protection framework:
            // DRAM-Locker locks the rows an attacker must hammer.
            let mut locker = DramLocker::new(LockerConfig::default(), ctrl.geometry());
            let mut plan = ProtectionPlan::new(LockTarget::AdjacentRows);
            plan.protect_range(ctrl.mapper(), start, end)?;
            let locked = plan.apply(&mut locker)?;
            println!("  protection plan locked {locked} aggressor-candidate rows");
            ctrl.set_hook(Box::new(locker));
        }

        // The attacker flips the most damaging reachable weight bit.
        let target = best_edge_target(&victim, &layout, &x, &y);
        let (victim_row, bit_in_row) = layout.bit_location(&victim.model, target)?;
        let driver = HammerDriver::new(HammerConfig { max_activations: 20_000, check_interval: 8 });
        let outcome = driver.hammer_bit(&mut ctrl, victim_row, bit_in_row)?;
        println!(
            "  hammer campaign: flipped={} requests={} denied={}",
            outcome.flipped, outcome.requests, outcome.denied
        );

        // The victim reloads weights from DRAM and measures accuracy.
        let mut model = victim.model.clone();
        layout.load(&mut model, ctrl.dram())?;
        Ok((model.accuracy(&x, &y)? * 100.0, outcome.denied))
    };

    println!("\nwithout DRAM-Locker:");
    let (acc_undefended, _) = run(false)?;
    println!("  post-attack accuracy: {acc_undefended:.1}%");

    println!("\nwith DRAM-Locker:");
    let (acc_defended, denied) = run(true)?;
    println!("  post-attack accuracy: {acc_defended:.1}% ({denied} accesses denied)");

    assert!(acc_defended >= acc_undefended);
    assert!(denied > 0, "the defense must have denied the hammer accesses");
    Ok(())
}
