//! The paper's headline scenario: a quantized DNN's weights live in
//! DRAM; a co-located attacker uses RowHammer to flip the weight bit
//! progressive bit search selects. Without DRAM-Locker the flip lands
//! and accuracy drops; with the protection plan locking the
//! aggressor-candidate rows, every hammer access is denied.
//!
//! The OS already isolates the victim's own pages (an unprivileged
//! attacker cannot *address* them), so the attacker's only aggressors
//! are the unowned rows physically adjacent to the weight image —
//! exactly the rows the scenario's `LockerMitigation` locks. The
//! gradient scan that picks the most damaging reachable bit is
//! `dlk_dnn::models::best_edge_target`, the same helper the
//! `BfaHammerAttack` driver uses.
//!
//! Run with: `cargo run --release --example protect_dnn_weights`

use dram_locker::dnn::models::{self, ModelKind};
use dram_locker::sim::{BfaHammerAttack, Budget, LockerMitigation, Scenario, VictimSpec};

const WEIGHT_BASE: u64 = 0x400;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Train and quantize the victim once; both runs deploy clones.
    let victim = models::victim_tiny(21);
    println!("victim trained: clean accuracy {:.1}%", victim.clean_accuracy * 100.0);

    let run = |defended: bool| -> Result<(f64, u64), Box<dyn std::error::Error>> {
        let mut builder = Scenario::builder()
            .label(if defended { "with DRAM-Locker" } else { "without DRAM-Locker" })
            .victim(VictimSpec::model(ModelKind::Tiny, 21, WEIGHT_BASE))
            .attack(BfaHammerAttack { batch: 48 })
            .budget(Budget { max_activations: 20_000, check_interval: 8, iterations: 1 })
            .eval_batch(48);
        if defended {
            // Register the weight image with the protection framework:
            // DRAM-Locker locks the rows an attacker must hammer.
            builder = builder.defense(LockerMitigation::adjacent());
        }
        let report = builder.build()?.run()?;
        if defended {
            println!("  defense actions: {}", report.mitigation_total());
        }
        println!(
            "  hammer campaign: flipped={} requests={} denied={}",
            report.landed_flips > 0,
            report.requests,
            report.denied
        );
        // The victim reloads weights from DRAM and measures accuracy.
        let accuracy = report.victims[0].accuracy_after_pct.expect("model victim");
        Ok((accuracy, report.denied))
    };

    println!("\nwithout DRAM-Locker:");
    let (acc_undefended, _) = run(false)?;
    println!("  post-attack accuracy: {acc_undefended:.1}%");

    println!("\nwith DRAM-Locker:");
    let (acc_defended, denied) = run(true)?;
    println!("  post-attack accuracy: {acc_defended:.1}% ({denied} accesses denied)");

    assert!(acc_defended >= acc_undefended);
    assert!(denied > 0, "the defense must have denied the hammer accesses");
    Ok(())
}
