//! Offline stub of `criterion`.
//!
//! Provides the API surface the workspace benches use —
//! `criterion_group!` / `criterion_main!`, `Criterion`,
//! `benchmark_group`, `sample_size`, `bench_function`, `Bencher::iter`
//! and `black_box` — with a deliberately lightweight measurement loop
//! (a short warm-up, then a fixed number of timed iterations, median
//! reported). Good enough to smoke-run every paper artifact and get a
//! ballpark ns/iter; swap in real criterion for publication-grade
//! statistics.

use std::time::Instant;

pub use std::hint::black_box;

const WARMUP_ITERS: u64 = 3;
const MEASURE_ITERS: u64 = 15;

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into() }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into(), f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub's iteration count is
    /// fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, id.into()), f);
        self
    }

    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, mut f: F) {
    let mut bencher = Bencher { samples: Vec::new() };
    f(&mut bencher);
    let mut samples = bencher.samples;
    if samples.is_empty() {
        println!("bench {label:40} (no measurement)");
        return;
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    println!("bench {label:40} median {median} ns/iter");
}

pub struct Bencher {
    samples: Vec<u128>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate a batch size so each timed sample runs ~200µs of
        // work: for nanosecond-scale closures a single call would be
        // dominated by Instant::now() overhead (real criterion batches
        // the same way).
        let start = Instant::now();
        black_box(f());
        let once_ns = start.elapsed().as_nanos().max(1);
        let batch = (200_000 / once_ns).clamp(1, 4096) as u64;
        for _ in 0..WARMUP_ITERS {
            black_box(f());
        }
        for _ in 0..MEASURE_ITERS {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples.push(start.elapsed().as_nanos() / batch as u128);
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_function_run() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(10);
            g.bench_function("f", |b| b.iter(|| ran += 1));
            g.finish();
        }
        assert!(ran >= (WARMUP_ITERS + MEASURE_ITERS) as u32);
    }
}
