//! Offline stub of `proptest`.
//!
//! Supports the subset this workspace's property tests use: the
//! `proptest!` macro over functions whose arguments are drawn from
//! integer range strategies or `any::<T>()`, plus `prop_assert!`,
//! `prop_assert_eq!`, `prop_assert_ne!` and `prop_assume!`. Each test
//! runs a fixed number of deterministic cases (256 by default,
//! `PROPTEST_CASES` overrides) seeded per test name, and failures
//! report the generated inputs. No shrinking.

#[doc(hidden)]
pub use rand as __rand;

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::{RngCore, RngExt};

    /// A source of values for one `proptest!` argument.
    pub trait Strategy {
        type Value: core::fmt::Debug + Clone;
        fn sample(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    /// Strategy returned by [`any`](crate::arbitrary::any).
    pub struct Any<T>(pub(crate) core::marker::PhantomData<T>);

    macro_rules! impl_any_uint {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_any_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn sample(&self, rng: &mut StdRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }

    /// Strategy for `Vec`s with a length drawn from a range
    /// (`proptest::collection::vec`).
    pub struct VecStrategy<S> {
        pub(crate) element: S,
        pub(crate) len: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.random_range(self.len.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Always produces the same value (`proptest::strategy::Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: core::fmt::Debug + Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }
}

pub mod collection {
    use crate::strategy::{Strategy, VecStrategy};

    /// Length spec for [`vec`]: an exact `usize` or a `Range<usize>`
    /// (subset of `proptest::collection::SizeRange`).
    pub struct SizeRange(pub(crate) core::ops::Range<usize>);

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange(exact..exact + 1)
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(range: core::ops::Range<usize>) -> Self {
            SizeRange(range)
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(range: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange(*range.start()..range.end() + 1)
        }
    }

    /// `proptest::collection::vec` — element strategy + length spec.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, len: len.into().0 }
    }
}

pub mod arbitrary {
    /// `proptest::prelude::any` — stubbed to a type-directed uniform
    /// strategy.
    pub fn any<T>() -> crate::strategy::Any<T> {
        crate::strategy::Any(core::marker::PhantomData)
    }
}

pub mod test_runner {
    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` filtered the case out; try another.
        Reject(String),
        /// A `prop_assert*` failed; the whole test fails.
        Fail(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Number of passing cases each property must accumulate.
    pub fn cases() -> u32 {
        std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(256)
    }

    /// Deterministic per-test seed: stable across runs, different per
    /// test name.
    pub fn seed_for(name: &str) -> u64 {
        // FNV-1a
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            use $crate::strategy::Strategy as _;
            let mut rng = <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(
                $crate::test_runner::seed_for(stringify!($name)),
            );
            let target = $crate::test_runner::cases();
            let mut passed = 0u32;
            let mut rejected = 0u32;
            while passed < target {
                $(let $arg = ($strat).sample(&mut rng);)+
                let inputs =
                    [$(format!("{} = {:?}", stringify!($arg), $arg)),+].join(", ");
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match outcome {
                    Ok(()) => passed += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        assert!(
                            rejected < 4096,
                            "proptest {}: too many prop_assume! rejections",
                            stringify!($name),
                        );
                    }
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed: {}\n  inputs: {}",
                            stringify!($name),
                            msg,
                            inputs,
                        );
                    }
                }
            }
        }
    )*};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n  right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respected(x in 3u32..17, y in 0usize..=4, b in any::<bool>()) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
            prop_assert_eq!(b as u8 <= 1, true);
        }

        #[test]
        fn assume_filters(x in 0u8..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    #[test]
    #[should_panic(expected = "proptest")]
    fn failures_panic() {
        proptest! {
            #[allow(dead_code)]
            fn inner(x in 0u8..4) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        inner();
    }
}
