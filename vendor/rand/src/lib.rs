//! Offline stub of `rand` (0.9-flavoured API surface).
//!
//! The build container cannot reach crates.io, so this shim provides
//! exactly the surface the workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and the `RngExt` extension trait with
//! `random_range` / `random_bool`. The generator is SplitMix64 —
//! deterministic, fast, and plenty for simulation/test workloads. Not
//! cryptographically secure.

/// Core trait: a source of uniformly distributed `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding trait (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Extension methods (subset of `rand::Rng` in 0.9, which renamed
/// `gen_*` to `random_*`).
pub trait RngExt: RngCore {
    /// Uniform sample from a half-open or inclusive range.
    ///
    /// Panics on an empty range, matching `rand`'s behaviour.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> RngExt for R {}

/// Legacy alias so `use rand::Rng` keeps working.
pub use RngExt as Rng;

#[inline]
fn unit_f64(bits: u64) -> f64 {
    // 53 mantissa bits -> uniform in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that a uniform value can be drawn from (subset of
/// `rand::distr::uniform::SampleRange`).
pub trait SampleRange<T> {
    fn sample_from<G: RngCore>(self, rng: &mut G) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty => $unit:ident),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let v = self.start + $unit(rng.next_u64()) * (self.end - self.start);
                // Rounding at binade boundaries can land exactly on `end`
                // (e.g. 16777215.0f32..16777216.0); keep the range half-open.
                if v < self.end {
                    v
                } else {
                    self.start
                }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                lo + $unit(rng.next_u64()) * (hi - lo)
            }
        }
    )*};
}

// The unit value is derived in the *target* type (24 mantissa bits for
// f32, 53 for f64) so `start + unit * span` never rounds up to `end` —
// half-open ranges stay half-open, matching real rand's contract.
#[inline]
fn unit_f32(bits: u64) -> f32 {
    (bits >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
}

impl_float_range!(f32 => unit_f32, f64 => unit_f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64-backed stand-in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            Self { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0u64..1_000_000), b.random_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.random_range(3u32..17);
            assert!((3..17).contains(&v));
            let f = rng.random_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.random_range(0usize..=4);
            assert!(i <= 4);
        }
    }

    #[test]
    fn half_open_float_range_excludes_end() {
        // Binade boundary where `start + u * span` rounds up to `end`
        // without the guard.
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100_000 {
            let v = rng.random_range(16_777_215.0f32..16_777_216.0);
            assert!(v < 16_777_216.0, "got end value {v}");
        }
    }

    #[test]
    fn bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(rng.random_bool(1.0));
        assert!(!rng.random_bool(0.0));
    }
}
