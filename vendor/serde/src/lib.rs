//! Offline stub of `serde`.
//!
//! The build container has no network access to crates.io, so this
//! workspace vendors a minimal API-compatible shim: the `Serialize` /
//! `Deserialize` traits exist (with blanket impls so bounds are always
//! satisfiable) and the derive macros parse-and-discard. Swap this for
//! the real `serde` by deleting `vendor/` and restoring the
//! crates.io dependency once the environment has registry access.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

pub mod de {
    pub use super::DeserializeOwned;
}
